"""MAP-IT output records.

The algorithm produces two lists (section 4.4.4): high-confidence
inter-AS link inferences and a much smaller list of uncertain ones.
Each record names the interface address, which half carried the
evidence, the two ASes the link connects, the inferred other-side
address, and how the inference was reached (direct, indirect, or via
the stub heuristic).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.halves import Half, half_str
from repro.net.ipv4 import format_address

DIRECT = "direct"
INDIRECT = "indirect"
STUB = "stub"


@dataclass(frozen=True)
class LinkInference:
    """One inferred inter-AS link interface half.

    ``kind`` records the mechanism that produced it: ``direct``
    (Alg 2), ``indirect`` (§4.4.2 other-side propagation), or their
    stub-heuristic variants (Alg 4, §4.8).
    """

    address: int
    forward: bool
    local_as: int
    remote_as: int
    kind: str
    other_side: Optional[int] = None
    uncertain: bool = False

    @property
    def half(self) -> Half:
        """The interface half (§3.2) this inference is attached to."""
        return (self.address, self.forward)

    def pair(self) -> Tuple[int, int]:
        """The unordered AS pair the link connects."""
        low, high = sorted((self.local_as, self.remote_as))
        return (low, high)

    def involves(self, asn: int) -> bool:
        """True when *asn* is one of the link's endpoints."""
        return asn in (self.local_as, self.remote_as)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "address": format_address(self.address),
            "direction": "forward" if self.forward else "backward",
            "local_as": self.local_as,
            "remote_as": self.remote_as,
            "kind": self.kind,
            "other_side": (
                format_address(self.other_side)
                if self.other_side is not None
                else None
            ),
            "uncertain": self.uncertain,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkInference":
        """Inverse of :meth:`to_dict`."""
        from repro.net.ipv4 import parse_address

        other = data.get("other_side")
        return cls(
            address=parse_address(data["address"]),
            forward=data["direction"] == "forward",
            local_as=int(data["local_as"]),
            remote_as=int(data["remote_as"]),
            kind=str(data["kind"]),
            other_side=parse_address(other) if other else None,
            uncertain=bool(data.get("uncertain", False)),
        )

    def __str__(self) -> str:
        other = (
            format_address(self.other_side) if self.other_side is not None else "?"
        )
        flags = " (uncertain)" if self.uncertain else ""
        return (
            f"{half_str(self.half)} [{self.kind}] "
            f"AS{self.local_as} <-> AS{self.remote_as}, other side {other}{flags}"
        )


@dataclass
class Checkpoint:
    """A labelled snapshot of inferences mid-run (drives Fig 7)."""

    label: str
    inferences: List[LinkInference]

    def __len__(self) -> int:
        return len(self.inferences)


@dataclass
class EngineSnapshot:
    """Resumable engine state, captured after one multipass iteration.

    Everything :meth:`repro.core.mapit.MapIt.run` needs to continue the
    outer loop exactly where a crashed run stopped: the iteration
    counter, the full mutable :class:`~repro.core.state.MapItState`,
    the §4.6 fingerprint history, and the checkpoints recorded so far.
    The run journal pickles snapshots whole — the state's inference
    tables are plain dataclasses keyed by tuples, so a round-trip is
    lossless.
    """

    iterations: int
    state: object  # MapItState; typed loosely to keep this module light
    seen_fingerprints: List[str]
    checkpoints: List[Checkpoint] = field(default_factory=list)


@dataclass
class MapItResult:
    """Everything a MAP-IT run produced.

    Two inference lists, as the paper reports them: the
    high-confidence ``inferences`` and the small ``uncertain`` list of
    §4.4.4 conflicting pairs.
    """

    inferences: List[LinkInference]
    uncertain: List[LinkInference]
    iterations: int
    converged: bool
    diagnostics: Dict[str, int] = field(default_factory=dict)
    checkpoints: List[Checkpoint] = field(default_factory=list)

    def by_address(self) -> Dict[int, List[LinkInference]]:
        """High-confidence inferences grouped by interface address."""
        grouped: Dict[int, List[LinkInference]] = {}
        for inference in self.inferences:
            grouped.setdefault(inference.address, []).append(inference)
        return grouped

    def addresses(self) -> Set[int]:
        """Addresses carrying at least one high-confidence inference."""
        return {inference.address for inference in self.inferences}

    def as_links(self) -> Set[Tuple[int, int]]:
        """The AS-level links implied by the high-confidence inferences."""
        return {inference.pair() for inference in self.inferences}

    def involving(self, asn: int) -> List[LinkInference]:
        """High-confidence inferences with *asn* as an endpoint."""
        return [inference for inference in self.inferences if inference.involves(asn)]

    def summary(self) -> Dict[str, int]:
        """Headline counts: inferences, interfaces, AS links, iterations."""
        return {
            "inferences": len(self.inferences),
            "uncertain": len(self.uncertain),
            "interfaces": len(self.addresses()),
            "as_links": len(self.as_links()),
            "iterations": self.iterations,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the full result for downstream pipelines."""
        return json.dumps(
            {
                "summary": self.summary(),
                "converged": self.converged,
                "diagnostics": self.diagnostics,
                "inferences": [i.to_dict() for i in self.inferences],
                "uncertain": [i.to_dict() for i in self.uncertain],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "MapItResult":
        """Inverse of :meth:`to_json` (checkpoints are not persisted)."""
        data = json.loads(text)
        return cls(
            inferences=[LinkInference.from_dict(d) for d in data["inferences"]],
            uncertain=[LinkInference.from_dict(d) for d in data["uncertain"]],
            iterations=int(data["summary"]["iterations"]),
            converged=bool(data["converged"]),
            diagnostics=dict(data.get("diagnostics", {})),
        )
