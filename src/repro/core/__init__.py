"""The MAP-IT multipass inference algorithm (paper section 4).

Public entry points:

* :class:`repro.core.mapit.MapIt` — the full algorithm driver;
* :func:`repro.core.mapit.run_mapit` — one-call convenience wrapper
  from sanitized traces to results;
* :class:`repro.core.config.MapItConfig` — tuning knobs, including the
  paper's *f* parameter and ablation switches;
* :class:`repro.core.results.MapItResult` — high-confidence and
  uncertain link inferences plus run metadata.
"""

from repro.core.config import MapItConfig
from repro.core.mapit import MapIt, run_mapit
from repro.core.results import LinkInference, MapItResult

__all__ = ["LinkInference", "MapIt", "MapItConfig", "MapItResult", "run_mapit"]
