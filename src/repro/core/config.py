"""MAP-IT configuration.

``f`` is the paper's headline knob (section 4.4.1 / 5.3): after finding
the plurality AS in a neighbor set, at least ``f * |N|`` of the members
must map to it for a direct inference.  The remaining switches exist
for the ablation experiments of Fig 7 — each disables one refinement
step so its contribution can be measured — and to choose between the
two readings of the remove-step test (section 4.5 prose says "more than
half of its N"; Alg 3 says "if the inference would no longer be made",
i.e. the full add rule).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Remove-step test: the section 4.5 prose rule.
REMOVE_MAJORITY = "majority"
#: Remove-step test: re-evaluate the full Alg 2 condition.
REMOVE_ADD_RULE = "add_rule"


@dataclass(frozen=True)
class MapItConfig:
    """Tuning knobs for a MAP-IT run.

    ``f`` and ``min_neighbors`` parameterize the Alg 2 direct-inference
    test, ``remove_rule`` selects the §4.5 remove-step reading,
    ``max_iterations`` caps the Alg 1 outer loop (§4.6), and
    ``enable_stub_heuristic`` switches Alg 4 (§4.8).
    """

    #: Fraction of a neighbor set that must map to the plurality AS
    #: (0 <= f <= 1).  The paper recommends 0.5.
    f: float = 0.5

    #: Minimum neighbor-set size for a direct inference (paper: 2).
    min_neighbors: int = 2

    #: Which test the remove step applies to existing direct inferences.
    remove_rule: str = REMOVE_MAJORITY

    #: Safety cap on outer add/remove iterations; the paper observes
    #: convergence after 3.
    max_iterations: int = 20

    #: Run the Alg 4 low-visibility / NAT stub heuristic.
    enable_stub_heuristic: bool = True

    #: Resolve dual inferences (section 4.4.3).  Ablation switch.
    fix_dual_inferences: bool = True

    #: Detect divergent other sides and drop the paired indirect
    #: updates (section 4.4.3).  Ablation switch.
    fix_divergent_other_sides: bool = True

    #: Resolve adjacent inverse inferences (section 4.4.4).  Ablation
    #: switch.
    fix_inverse_inferences: bool = True

    #: Run the remove step at all.  Ablation switch.
    enable_remove_step: bool = True

    #: Capture a labelled snapshot of the inference set after each
    #: algorithm stage (drives the Fig 7 reproduction).
    record_checkpoints: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.f <= 1.0:
            raise ValueError(f"f must be within [0, 1], got {self.f}")
        if self.min_neighbors < 1:
            raise ValueError("min_neighbors must be at least 1")
        if self.remove_rule not in (REMOVE_MAJORITY, REMOVE_ADD_RULE):
            raise ValueError(f"unknown remove_rule {self.remove_rule!r}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")

    def with_f(self, f: float) -> "MapItConfig":
        """A copy with a different *f* (used by the Fig 6 sweep)."""
        return replace(self, f=f)
