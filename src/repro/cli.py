"""Command-line interface.

Six subcommands cover the paper's released-tool workflow plus the
reproduction experiments:

* ``mapit simulate`` — generate a synthetic dataset directory;
* ``mapit run`` — run MAP-IT over a dataset directory (real or
  synthetic) and print/write the inferred inter-AS link interfaces;
* ``mapit serve`` — long-running incremental daemon: tail a trace
  stream, re-infer only the dirty region at each quiesce, answer
  queries over HTTP (docs/SERVE.md);
* ``mapit evaluate`` — run and score against the directory's ground
  truth, per verification network;
* ``mapit experiment`` — regenerate one of the paper's tables/figures
  (``stats``, ``fig6``, ``fig7``, ``fig8``, ``table1``) on a preset
  scenario;
* ``mapit explain`` — why was (or wasn't) an interface inferred;
* ``mapit report`` — a human-readable summary of a run;
* ``mapit inspect-trace`` — summarize a ``--trace`` JSONL file
  (per-pass deltas, convergence curve, slowest spans).

``run``, ``evaluate``, and ``experiment`` accept the observability
flags ``--trace FILE``, ``--metrics FILE``, and ``--profile`` (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro import MapItConfig
from repro.io import load_bundle, save_scenario
from repro.robust.chaos import CHAOS_SCHEDULES
from repro.robust.errors import ErrorBudgetExceeded
from repro.robust.supervise import ShardDeadlineExhausted
from repro.sim.presets import dense_config, paper_config, small_config, tiny_config
from repro.sim.scenario import build_scenario

_PRESETS = {"small": small_config, "paper": paper_config, "dense": dense_config}
_CHAOS_PRESETS = {"tiny": tiny_config, "small": small_config, "paper": paper_config}
#: every preset `mapit sweep` accepts: scenario worlds plus the
#: shard-generated stress tiers (repro.sweep.grid owns the registries)
_SWEEP_PRESETS = (
    "tiny", "small", "paper", "dense", "stress-smoke", "stress", "stress-large"
)

#: exit code for an ingest whose malformed fraction exceeded the budget
EXIT_BUDGET_EXCEEDED = 3
#: exit code when a shard missed its deadline on every attempt,
#: including inline execution (the timeout(1) convention)
EXIT_SHARD_TIMEOUT = 124
#: exit code for SIGINT/SIGTERM (128 + SIGINT), after clean teardown
EXIT_INTERRUPTED = 130

_EPILOG = """\
exit codes (docs/CLI.md has the full contract table):
  0    success
  1    unexpected internal error (uncaught exception)
  2    usage or data error (missing ground truth, no verification ASNs,
       unreadable trace file, --resume id mismatch — run or sweep,
       negative --jobs)
  3    ingest error budget exceeded: under --on-error lenient/quarantine,
       more than --max-error-rate of the records were malformed (strict
       mode exits 3 on the first malformed record; serve counts shed
       lines against the same budget)
  124  a shard exceeded --shard-timeout on every attempt, including the
       final inline one
  130  interrupted (SIGINT/SIGTERM); workers are terminated promptly,
       and a serve daemon drains its queue, quiesces, and writes a
       final checkpoint before exiting

serve (incremental daemon; see docs/SERVE.md):
  mapit serve DATASET --follow FILE [--http PORT] [--socket PATH]
                  tail FILE into the inference state; each quiesce is
                  byte-identical to `mapit run` over the traces so far
  mapit serve DATASET --follow FILE --once --json --output F
                  batch-equivalence mode: fold to end-of-file and emit
                  exactly what `mapit run --json --output F` would

--on-error semantics (simulate/run/evaluate/explain/report):
  strict      abort on the first malformed record (default)
  lenient     skip malformed records, count them in the health summary
  quarantine  like lenient, and write rejects to <dataset>/quarantine/

observability (run/evaluate/experiment):
  --trace FILE    stream JSONL events (deterministic: no wall-clock
                  timestamps); summarize with `mapit inspect-trace FILE`
  --metrics FILE  write the counters/gauges/timers registry as JSON
  --profile       add span timing events (dur_ms) to the trace

sweep (grid orchestration; see docs/CLI.md and docs/PERFORMANCE.md):
  mapit sweep WORKDIR --preset paper --seed 0 --seed 1 --f 0.1 --f 0.5
                  expand the (preset, seed, f) grid, fan the cells across
                  the worker pool, checkpoint each completed cell in the
                  journal; re-run with --resume SWEEP_ID after a kill and
                  the per-cell results are byte-identical
  mapit sweep WORKDIR --preset stress --jobs 1
                  stress tier: generate a 10k-AS world shard-by-shard
                  (never fully resident) and fold it streaming

performance (run/evaluate/explain/report/sweep; see docs/PERFORMANCE.md):
  --jobs N        shard parsing and graph construction across N worker
                  processes (default $MAPIT_JOBS or 1); results identical.
                  N=0 (or MAPIT_JOBS=0) means all cores; negative N is a
                  usage error (exit 2)
  --cache DIR     reuse parsed traces from DIR when the source file's
                  sha256 matches (default $MAPIT_CACHE or off)
  --no-cache      always parse from source
  --shard-timeout SECONDS
                  per-shard deadline; late shards are retried and
                  degraded to inline execution (default
                  $MAPIT_SHARD_TIMEOUT or none; docs/ROBUSTNESS.md)

resilience (run; see docs/ROBUSTNESS.md):
  --journal DIR   journal completed units (graph, iterations) to DIR
                  (default $MAPIT_JOURNAL or off)
  --resume ID     continue a journaled run from its last durable unit;
                  output is byte-identical to an uninterrupted run
"""


def _print_rows(rows: Iterable[Dict], stream=None) -> None:
    """Render dict rows as an aligned text table."""
    stream = stream or sys.stdout
    rows = list(rows)
    if not rows:
        print("(no rows)", file=stream)
        return
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), *(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    line = "  ".join(str(header).ljust(widths[header]) for header in headers)
    print(line, file=stream)
    print("-" * len(line), file=stream)
    for row in rows:
        print(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers),
            file=stream,
        )


def _mapit_config(args) -> MapItConfig:
    return MapItConfig(
        f=args.f,
        enable_stub_heuristic=not args.no_stub_heuristic,
        remove_rule=args.remove_rule,
    )


def _add_robust_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--on-error",
        choices=("strict", "lenient", "quarantine"),
        default="strict",
        help=(
            "malformed-record policy: strict aborts on the first bad record, "
            "lenient skips and counts them, quarantine also writes rejects "
            "to <dataset>/quarantine/"
        ),
    )
    parser.add_argument(
        "--max-error-rate",
        type=float,
        default=0.1,
        metavar="FRACTION",
        help=(
            "abort when more than this fraction of records is malformed "
            "(lenient/quarantine modes; default 0.1)"
        ),
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        help="stream trace events to FILE as JSON lines (see inspect-trace)",
    )
    group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the metrics registry (counters/gauges/timers) to FILE as JSON",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="record span timings into the metrics and the trace",
    )


def _jobs_type(text: str) -> int:
    """argparse type for ``--jobs``: non-negative int, 0 = all cores.

    Negative values are a usage error (exit 2) rather than a silent
    clamp — a typo like ``--jobs -4`` should not quietly serialize.
    """
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = all cores), got {value}"
        )
    return value


def _add_perf_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("performance")
    group.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help=(
            "shard trace parsing and graph construction across N worker "
            "processes (results are identical; 0 = all cores; default "
            "$MAPIT_JOBS or 1)"
        ),
    )
    group.add_argument(
        "--cache",
        metavar="DIR",
        help=(
            "cache parsed traces in DIR keyed by the traces file's sha256; "
            "a verified hit skips parsing (default $MAPIT_CACHE or off)"
        ),
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache and $MAPIT_CACHE; always parse from source",
    )
    group.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-shard deadline for pooled work; late shards are retried "
            "and finally run inline (default $MAPIT_SHARD_TIMEOUT or none)"
        ),
    )


def _perf_settings(args):
    """Resolve (jobs, cache_dir, shard_timeout) from flags and env."""
    from repro.perf.pool import resolve_jobs
    from repro.robust.supervise import default_shard_timeout

    jobs = resolve_jobs(args.jobs)
    cache = None
    if not args.no_cache:
        cache = args.cache or os.environ.get("MAPIT_CACHE") or None
    timeout = (
        args.shard_timeout
        if args.shard_timeout is not None
        else default_shard_timeout()
    )
    return jobs, cache, timeout


def _build_obs(args):
    """An Observability handle for the parsed flags, or None when unused.

    CLI traces are written without wall-clock timestamps so the same
    dataset and flags always produce a byte-identical file; ``--profile``
    adds the (non-deterministic) ``dur_ms`` span events.
    """
    if not (args.trace or args.metrics or args.profile):
        return None
    from repro.obs import Metrics, Observability, Tracer

    tracer = Tracer.to_file(args.trace, timestamps=False) if args.trace else None
    metrics = Metrics() if (args.metrics or args.profile) else None
    return Observability(tracer=tracer, metrics=metrics, profile=args.profile)


def _finish_obs(obs, args) -> None:
    """Write the metrics file (if requested) and close the trace sink."""
    if obs is None:
        return
    if args.metrics and obs.metrics is not None:
        obs.metrics.write(args.metrics)
    obs.close()


def _load_bundle_checked(args, obs=None, graph_only=False):
    """Load the dataset under the CLI's robustness and perf flags.

    Prints the ingest health summary to stderr; returns None (caller
    exits with EXIT_BUDGET_EXCEEDED) when the error budget is blown.
    *graph_only* opts into the fused streaming loader when worker
    shards are in play (the ``run`` command — the only one that never
    needs trace objects).
    """
    from repro.obs import NULL_OBS

    jobs, cache, shard_timeout = _perf_settings(args)
    try:
        bundle = load_bundle(
            args.dataset,
            on_error=args.on_error,
            max_error_rate=args.max_error_rate,
            obs=obs if obs is not None else NULL_OBS,
            jobs=jobs,
            cache=cache,
            shard_timeout=shard_timeout,
            graph_only=graph_only,
        )
    except ErrorBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    for line in bundle.health.summary_lines():
        print(line, file=sys.stderr)
    return bundle


def _emit_result(result, output: Optional[str], as_json: bool) -> None:
    """Write a result the way ``mapit run`` always has.

    ``mapit serve --once`` shares this writer, which is what makes the
    serve-vs-batch equivalence a *byte* identity: both commands produce
    their output through the very same code path.
    """
    out = open(output, "w") if output else sys.stdout
    try:
        if as_json:
            print(result.to_json(indent=2), file=out)
        else:
            for inference in result.inferences:
                print(inference, file=out)
            if result.uncertain:
                print("# uncertain inferences:", file=out)
                for inference in result.uncertain:
                    print(f"# {inference}", file=out)
    finally:
        if output:
            out.close()


def _print_result_summary(result) -> None:
    summary = result.summary()
    print(
        f"{summary['inferences']} inferences on {summary['interfaces']} interfaces "
        f"({summary['as_links']} AS links, {summary['uncertain']} uncertain, "
        f"{summary['iterations']} iterations)",
        file=sys.stderr,
    )


def _add_mapit_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--f", type=float, default=0.5, help="Alg 2 threshold f")
    parser.add_argument(
        "--no-stub-heuristic",
        action="store_true",
        help="disable the Alg 4 low-visibility stub heuristic",
    )
    parser.add_argument(
        "--remove-rule",
        choices=("majority", "add_rule"),
        default="majority",
        help="remove-step test (section 4.5 prose vs Alg 3 literal)",
    )


def cmd_simulate(args) -> int:
    config = _PRESETS[args.scale](args.seed)
    scenario = build_scenario(config)
    hostnames = None
    if not args.no_hostnames:
        from repro.dns.naming import generate_hostnames

        hostnames = generate_hostnames(
            scenario.network,
            scenario.ground_truth,
            scenario.tier1_asns[:2],
            seed=args.seed,
        )
    root = save_scenario(scenario, args.output, hostnames=hostnames)
    print(f"wrote {len(scenario.traces)} traces and datasets to {root}")
    # Re-ingest what was just written under the selected policy: a
    # cheap end-to-end check that the dataset is loadable, with the
    # same health summary the run/evaluate commands print.
    from repro.robust.errors import ErrorBudget
    from repro.robust.ingest import ingest_trace_file

    try:
        _, report = ingest_trace_file(
            root / "traces.txt",
            mode=args.on_error,
            budget=ErrorBudget(args.max_error_rate),
        )
    except ErrorBudgetExceeded as exc:  # pragma: no cover - fresh writes are clean
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    for line in report.summary_lines():
        print(line, file=sys.stderr)
    if args.describe:
        from repro.sim.describe import describe_lines

        for line in describe_lines(scenario.graph, scenario.network):
            print(f"  {line}")
    return 0


def cmd_run(args) -> int:
    journal_dir = args.journal or os.environ.get("MAPIT_JOURNAL") or None
    if args.resume and not journal_dir:
        print(
            "error: --resume requires --journal (or $MAPIT_JOURNAL)",
            file=sys.stderr,
        )
        return 2
    if journal_dir and not args.no_cache and args.cache is None:
        # Journaled runs default their parse cache next to the journal,
        # so a resume replays the parse as a verified cache hit.
        args.cache = os.environ.get("MAPIT_CACHE") or journal_dir
    obs = _build_obs(args)
    try:
        # The fused graph-only loader applies to plain runs; journaled
        # runs keep the classic load so a --resume that replays the
        # journaled graph blob skips the build (and its events) exactly
        # as it did when the journal was written.
        bundle = _load_bundle_checked(args, obs=obs, graph_only=not journal_dir)
        if bundle is None:
            return EXIT_BUDGET_EXCEEDED
        jobs, _, shard_timeout = _perf_settings(args)
        config = _mapit_config(args)
        if journal_dir:
            from repro.obs import NULL_OBS
            from repro.robust.journal import (
                RunJournal,
                journaled_run,
                run_identity_for,
            )

            run_id = run_identity_for(args.dataset, config, args.on_error)
            if args.resume and args.resume != run_id:
                print(
                    f"error: --resume {args.resume} does not match this "
                    f"dataset and configuration (expected run id {run_id})",
                    file=sys.stderr,
                )
                return 2
            journal = RunJournal(
                journal_dir, run_id, obs=obs if obs is not None else NULL_OBS
            )
            print(f"journal: run {run_id} in {journal_dir}", file=sys.stderr)
            result = journaled_run(
                bundle,
                config,
                obs=obs,
                jobs=jobs,
                shard_timeout=shard_timeout,
                journal=journal,
                resume=bool(args.resume),
            )
        else:
            result = bundle.run_mapit(
                config, obs=obs, jobs=jobs, shard_timeout=shard_timeout
            )
    finally:
        _finish_obs(obs, args)
    _emit_result(result, args.output, args.json)
    _print_result_summary(result)
    return 0


def _serve_warm_start(
    daemon: "ServeDaemon", traces_path, format: str, cache_dir
) -> int:
    """Fold the dataset's own traces file into a serve daemon.

    A verified ``.mapitc`` v2 cache hit folds the columnar payload
    directly (no object materialization, no re-parse); otherwise the
    file streams through the normal ingest path.  Either way the
    source's byte offset ends at end-of-file, so a later checkpoint
    resumes past the warm base.  Returns traces folded.
    """
    from repro.serve.sources import FollowSource, read_file_size

    name = str(traces_path)
    offset = daemon.offsets.get(name, 0)
    size = read_file_size(traces_path)
    if offset >= size:
        return 0  # a resumed checkpoint already covered the file
    if offset == 0 and cache_dir:
        from repro.io.atomic import file_sha256
        from repro.perf.cache import BundleCache

        hit = BundleCache(cache_dir, obs=daemon.obs).load_entry(
            file_sha256(traces_path), format
        )
        if hit is not None and hit.flat is not None:
            return daemon.warm_fold(hit.flat, hit.parsed, hit.skipped, name, size)
    source = FollowSource(traces_path, offset=offset)
    return source.replay(daemon)


def cmd_serve(args) -> int:
    import signal
    import threading
    from pathlib import Path

    from repro.obs import NULL_OBS
    from repro.robust.errors import ErrorBudget
    from repro.robust.journal import RunJournal
    from repro.serve.api import QueryAPI, ServeHTTPServer
    from repro.serve.checkpoint import serve_run_identity
    from repro.serve.daemon import ServeDaemon
    from repro.serve.incremental import IncrementalIndex
    from repro.serve.sources import FollowSource, SocketSource
    from repro.traceroute.parse import TraceParseError

    journal_dir = args.journal or os.environ.get("MAPIT_JOURNAL") or None
    if args.resume and not journal_dir:
        print(
            "error: --resume requires --journal (or $MAPIT_JOURNAL)",
            file=sys.stderr,
        )
        return 2
    obs = _build_obs(args)
    handle = obs if obs is not None else NULL_OBS
    http_server = None
    socket_source = None
    restore_handlers: Dict[int, object] = {}
    exit_code = 0
    try:
        bundle = load_bundle(
            args.dataset,
            on_error=args.on_error,
            max_error_rate=args.max_error_rate,
            obs=handle,
            skip_traces=True,
        )
        for line in bundle.health.summary_lines():
            print(line, file=sys.stderr)
        root = Path(args.dataset)
        dataset_traces = None
        for name in ("traces.txt", "traces.jsonl"):
            if (root / name).exists():
                dataset_traces = root / name
                break
        follow_paths = [Path(p) for p in (args.follow or [])]
        stream_paths = ([dataset_traces] if dataset_traces else []) + follow_paths
        formats = {
            "jsonl" if path.suffix == ".jsonl" else "text" for path in stream_paths
        }
        if len(formats) > 1:
            print(
                "error: mixed text/jsonl sources; one serve session "
                "streams one record format",
                file=sys.stderr,
            )
            return 2
        format = formats.pop() if formats else "jsonl"
        config = _mapit_config(args)
        index = IncrementalIndex(
            bundle.ip2as,
            org=bundle.as2org,
            rel=bundle.relationships,
            config=config,
            obs=handle,
        )
        budget = (
            ErrorBudget(args.max_error_rate) if args.on_error != "strict" else None
        )
        journal = None
        if journal_dir:
            run_id = serve_run_identity(args.dataset, config, format)
            journal = RunJournal(journal_dir, run_id, obs=handle)
            print(f"journal: serve run {run_id} in {journal_dir}", file=sys.stderr)
        daemon = ServeDaemon(
            index,
            format=format,
            on_error=args.on_error,
            budget=budget,
            journal=journal,
            obs=handle,
            quiesce_every=args.quiesce_every,
            checkpoint_every=args.checkpoint_every,
            queue_limit=args.queue_limit,
        )
        if args.resume:
            if daemon.resume():
                print(
                    "resume: restored checkpoint at "
                    f"{daemon.stats_view()['folds']} folds",
                    file=sys.stderr,
                )
            else:
                print("resume: no usable checkpoint; starting cold", file=sys.stderr)
        _, cache_dir, _ = _perf_settings(args)
        try:
            if dataset_traces is not None:
                _serve_warm_start(daemon, dataset_traces, format, cache_dir)
            if args.once:
                for path in follow_paths:
                    FollowSource(
                        path,
                        offset=daemon.offsets.get(str(path), 0),
                        poll_interval=args.poll_interval,
                    ).replay(daemon)
                snapshot = daemon.finalize()
                _emit_result(snapshot.result, args.output, args.json)
                _print_result_summary(snapshot.result)
            else:
                stop = threading.Event()

                def _request_stop(signum, frame):
                    stop.set()

                for signum in (signal.SIGINT, signal.SIGTERM):
                    try:
                        restore_handlers[signum] = signal.signal(
                            signum, _request_stop
                        )
                    except ValueError:  # pragma: no cover - non-main thread
                        pass
                for path in follow_paths:
                    source = FollowSource(
                        path,
                        offset=daemon.offsets.get(str(path), 0),
                        poll_interval=args.poll_interval,
                    )
                    threading.Thread(
                        target=source.feed,
                        args=(daemon,),
                        kwargs={"stop": stop},
                        daemon=True,
                    ).start()
                if args.socket:
                    socket_source = SocketSource(args.socket, daemon)
                    socket_source.start()
                if args.http is not None:
                    http_server = ServeHTTPServer(QueryAPI(daemon), port=args.http)
                    http_server.start()
                    print(
                        f"serve: http on {http_server.host}:{http_server.port}",
                        file=sys.stderr,
                        flush=True,
                    )
                print(
                    "serve: streaming (SIGINT/SIGTERM drains, checkpoints, exits)",
                    file=sys.stderr,
                    flush=True,
                )
                daemon.run_loop(stop, idle_wait=args.poll_interval)
                if stop.is_set():
                    exit_code = EXIT_INTERRUPTED
                if args.output or args.json:
                    _emit_result(daemon.snapshot.result, args.output, args.json)
        except ErrorBudgetExceeded as exc:
            print(f"error: {exc}", file=sys.stderr)
            exit_code = EXIT_BUDGET_EXCEEDED
        except TraceParseError as exc:
            print(f"error: {exc}", file=sys.stderr)
            exit_code = EXIT_BUDGET_EXCEEDED
    finally:
        if http_server is not None:
            http_server.close()
        if socket_source is not None:
            socket_source.close()
        for signum, handler in restore_handlers.items():
            signal.signal(signum, handler)
        _finish_obs(obs, args)
    return exit_code


def cmd_evaluate(args) -> int:
    from repro.eval.verify import build_verification, score_inferences
    from repro.graph.neighbors import build_interface_graph
    from repro.traceroute.sanitize import sanitize_traces

    obs = _build_obs(args)
    try:
        bundle = _load_bundle_checked(args, obs=obs)
        if bundle is None:
            return EXIT_BUDGET_EXCEEDED
        if bundle.ground_truth is None:
            print(
                "dataset has no groundtruth.txt; nothing to evaluate", file=sys.stderr
            )
            return 2
        jobs, _, shard_timeout = _perf_settings(args)
        result = bundle.run_mapit(
            _mapit_config(args), obs=obs, jobs=jobs, shard_timeout=shard_timeout
        )
    finally:
        _finish_obs(obs, args)
    report = sanitize_traces(bundle.traces)
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    targets = args.asn or bundle.manifest.get("verification_asns") or []
    if not targets:
        print("no verification ASNs (pass --asn)", file=sys.stderr)
        return 2
    rows = []
    for asn in targets:
        dataset = build_verification(
            bundle.ground_truth,
            asn,
            graph,
            set(report.retained_addresses),
            bundle.ip2as.asn,
        )
        score = score_inferences(result.inferences, dataset, bundle.as2org, graph)
        row = {"network": f"AS{asn}"}
        row.update(score.row())
        rows.append(row)
    _print_rows(rows)
    return 0


def cmd_explain(args) -> int:
    from repro.analysis.explain import explain_interface
    from repro.core.mapit import MapIt
    from repro.graph.neighbors import build_interface_graph
    from repro.net.ipv4 import parse_address
    from repro.traceroute.sanitize import sanitize_traces

    bundle = _load_bundle_checked(args)
    if bundle is None:
        return EXIT_BUDGET_EXCEEDED
    report = sanitize_traces(bundle.traces)
    graph = build_interface_graph(report.traces, all_addresses=report.all_addresses)
    mapit = MapIt(
        graph,
        bundle.ip2as,
        org=bundle.as2org,
        rel=bundle.relationships,
        config=_mapit_config(args),
    )
    mapit.run()
    for address_text in args.address:
        print(explain_interface(mapit, parse_address(address_text)).render())
        print()
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import run_report

    bundle = _load_bundle_checked(args)
    if bundle is None:
        return EXIT_BUDGET_EXCEEDED
    jobs, _, shard_timeout = _perf_settings(args)
    result = bundle.run_mapit(
        _mapit_config(args), jobs=jobs, shard_timeout=shard_timeout
    )
    print(run_report(result, bundle.relationships, bundle.as2org))
    return 0


def cmd_experiment(args) -> int:
    from repro.eval.experiment import prepare_experiment

    scenario = build_scenario(_PRESETS[args.scale](args.seed))
    experiment = prepare_experiment(scenario)
    obs = _build_obs(args)
    try:
        if args.which == "stats":
            from repro.eval.stats import pipeline_stats

            rows = [
                {"statistic": key, "value": value}
                for key, value in pipeline_stats(experiment).rows().items()
            ]
            _print_rows(rows)
        elif args.which == "fig6":
            from repro.eval.fsweep import sweep_f

            _print_rows(sweep_f(experiment, obs=obs).rows())
        elif args.which == "fig7":
            from repro.eval.steps import step_impact

            _print_rows(step_impact(experiment, MapItConfig(f=args.f), obs=obs).rows())
        elif args.which == "fig8":
            from repro.eval.compare import compare_methods

            _print_rows(compare_methods(experiment, obs=obs).rows())
        elif args.which == "aspath":
            from repro.analysis.paths import path_accuracy

            mapit = experiment.new_mapit(MapItConfig(f=args.f), obs=obs)
            mapit.run()
            truth = experiment.scenario.ground_truth.router_as
            accuracy = path_accuracy(mapit, experiment.report.traces, truth)
            _print_rows([accuracy.summary()])
        elif args.which == "table1":
            from repro.eval.breakdown import breakdown_by_relationship

            result = experiment.run_mapit(MapItConfig(f=args.f), obs=obs)
            rows = []
            for label, dataset in experiment.datasets.items():
                breakdown = breakdown_by_relationship(
                    result.inferences,
                    dataset,
                    scenario.relationships,
                    scenario.as2org,
                    experiment.graph,
                )
                for row in breakdown.rows():
                    out = {"network": label}
                    out.update(row)
                    rows.append(out)
            _print_rows(rows)
        else:  # pragma: no cover - argparse restricts choices
            return 2
    finally:
        _finish_obs(obs, args)
    return 0


def cmd_inspect_trace(args) -> int:
    from repro.obs import read_trace, summarize

    try:
        events = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = summarize(events, top=args.top)
    for line in summary.header_lines():
        print(line)
    print()
    print("per-pass inference deltas:")
    _print_rows(summary.passes)
    print()
    print("convergence (live inferences per outer iteration):")
    _print_rows(summary.convergence)
    if args.rules:
        print()
        print("rule census:")
        _print_rows(summary.rules)
    if summary.spans:
        print()
        print(f"slowest spans (top {args.top}, by total duration):")
        _print_rows(summary.spans)
    return 0


def cmd_chaos(args) -> int:
    from repro.perf.pool import resolve_jobs
    from repro.robust.chaos import replay_bundle, run_chaos, write_bundle

    jobs = resolve_jobs(args.jobs)
    if args.replay:
        try:
            outcome = replay_bundle(
                args.replay, jobs=jobs, workdir=args.workdir
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: unreadable chaos bundle: {exc}", file=sys.stderr)
            return 2
    else:
        schedules = None
        if args.schedule and "all" not in args.schedule:
            schedules = list(dict.fromkeys(args.schedule))
        outcome = run_chaos(
            preset=args.preset,
            seed=args.seed,
            schedules=schedules,
            jobs=jobs,
            workdir=args.workdir,
        )
    for line in outcome.lines():
        print(line)
    if not outcome.ok:
        return 1
    if args.record:
        write_bundle(args.record, outcome)
        print(f"recorded regression bundle at {args.record}", file=sys.stderr)
    return 0


def cmd_sweep(args) -> int:
    from repro.sweep import SweepGrid, SweepMismatchError, SweepPlan, run_sweep

    try:
        grid = SweepGrid.build(
            args.preset or ["tiny"],
            args.seed or [0],
            args.f or [0.5],
            kind=args.kind,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs, cache, shard_timeout = _perf_settings(args)
    workdir = Path(args.workdir)
    if cache is None and not args.no_cache:
        cache = workdir / "cache"
    plan = SweepPlan(
        grid=grid,
        workdir=workdir,
        out_dir=Path(args.out) if args.out else workdir / "results",
        journal_dir=Path(args.journal) if args.journal else workdir / "journal",
        cache_dir=Path(cache) if cache else None,
        jobs=jobs,
        shard_timeout=shard_timeout,
        shard_size=args.shard_size,
        enable_stub_heuristic=not args.no_stub_heuristic,
        remove_rule=args.remove_rule,
        resume=args.resume,
    )
    from repro.sweep import sweep_identity

    # Printed before any work so a killed sweep's id is on record for
    # --resume (the journal filename carries it too).
    print(
        f"sweep {sweep_identity(grid, plan.base_config)} "
        f"(journal: {plan.journal_dir})",
        file=sys.stderr,
    )
    obs = _build_obs(args)
    from repro.obs import NULL_OBS

    try:
        outcome = run_sweep(plan, obs=obs if obs is not None else NULL_OBS)
    except SweepMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _finish_obs(obs, args)
    print(f"sweep {outcome.sweep_id}: {outcome.completed} cells completed, "
          f"{outcome.skipped} resumed, {outcome.worlds_built} worlds built, "
          f"{outcome.worlds_reused} reused -> {outcome.out_dir}",
          file=sys.stderr)
    _print_rows(outcome.rows)
    return 0


def cmd_diff(args) -> int:
    """Forward to the differential harness (``python -m repro.diff``).

    Arguments pass through verbatim — the harness owns its own flag
    set (docs/DIFFERENTIAL_TESTING.md documents it), so ``mapit diff``
    never drifts out of sync with ``python -m repro.diff``.
    """
    from repro.diff.cli import main as diff_main

    return diff_main(args.diff_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mapit",
        description="MAP-IT: inferring inter-AS link interfaces from traceroute",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a synthetic dataset")
    simulate.add_argument("output", help="dataset directory to create")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--scale", choices=sorted(_PRESETS), default="small")
    simulate.add_argument("--no-hostnames", action="store_true")
    simulate.add_argument(
        "--describe", action="store_true", help="print a topology summary"
    )
    _add_robust_options(simulate)
    simulate.set_defaults(func=cmd_simulate)

    run = sub.add_parser("run", help="run MAP-IT over a dataset directory")
    run.add_argument("dataset", help="dataset directory")
    run.add_argument("--output", help="write inferences here instead of stdout")
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")
    run.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "journal completed units (graph, multipass iterations) to DIR "
            "so a crashed run can be resumed (default $MAPIT_JOURNAL or off)"
        ),
    )
    run.add_argument(
        "--resume",
        metavar="RUN_ID",
        help=(
            "continue the journaled run RUN_ID from its last durable unit; "
            "the id is printed when journaling starts, and the resumed "
            "output is byte-identical to an uninterrupted run"
        ),
    )
    _add_mapit_options(run)
    _add_robust_options(run)
    _add_obs_options(run)
    _add_perf_options(run)
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="incremental inference daemon over a trace stream",
        description=(
            "Fold traces into the inference state as they arrive, "
            "re-running only the dirty region of the graph at each "
            "quiesce.  A quiesced serve state is byte-identical to "
            "`mapit run` over the same traces (docs/SERVE.md)."
        ),
    )
    serve.add_argument(
        "dataset",
        help=(
            "dataset directory with the IP2AS mapping files; its own "
            "traces file (if present) is folded as the warm base"
        ),
    )
    serve.add_argument(
        "--follow",
        action="append",
        metavar="FILE",
        help="tail FILE for appended trace records (repeatable)",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        help="accept newline-delimited records on a unix socket at PATH",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help=(
            "fold the dataset and --follow files to end-of-file, emit "
            "the result, and exit (the batch-equivalence mode)"
        ),
    )
    serve.add_argument("--output", help="write inferences here instead of stdout")
    serve.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    serve.add_argument(
        "--quiesce-every",
        type=int,
        default=64,
        metavar="N",
        help="re-run inference after every N folded traces (default 64; "
        "an idle stream quiesces immediately)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint fold state to the journal every N folds "
        "(default 0 = only at shutdown; requires --journal)",
    )
    serve.add_argument(
        "--journal",
        metavar="DIR",
        help="journal serve checkpoints to DIR so a killed daemon can "
        "--resume (default $MAPIT_JOURNAL or off)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore the newest checkpoint from --journal and continue "
        "from its source offsets",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the query API on 127.0.0.1:PORT (0 = ephemeral; the "
        "bound port is printed to stderr)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        metavar="N",
        help="bound the ingest queue at N lines; arrivals beyond it are "
        "shed deterministically and counted (default 1024)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="file-tail polling interval (default 0.1)",
    )
    _add_mapit_options(serve)
    _add_robust_options(serve)
    _add_obs_options(serve)
    _add_perf_options(serve)
    serve.set_defaults(func=cmd_serve)

    evaluate = sub.add_parser("evaluate", help="run and score against ground truth")
    evaluate.add_argument("dataset", help="dataset directory with groundtruth.txt")
    evaluate.add_argument(
        "--asn", type=int, action="append", help="verification network(s)"
    )
    _add_mapit_options(evaluate)
    _add_robust_options(evaluate)
    _add_obs_options(evaluate)
    _add_perf_options(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    explain = sub.add_parser("explain", help="explain one interface's inference")
    explain.add_argument("dataset", help="dataset directory")
    explain.add_argument("address", nargs="+", help="interface address(es)")
    _add_mapit_options(explain)
    _add_robust_options(explain)
    _add_perf_options(explain)
    explain.set_defaults(func=cmd_explain)

    report = sub.add_parser("report", help="summarize a run over a dataset")
    report.add_argument("dataset", help="dataset directory")
    _add_mapit_options(report)
    _add_robust_options(report)
    _add_perf_options(report)
    report.set_defaults(func=cmd_report)

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "which", choices=("stats", "fig6", "fig7", "fig8", "table1", "aspath")
    )
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--scale", choices=sorted(_PRESETS), default="paper")
    experiment.add_argument("--f", type=float, default=0.5)
    _add_obs_options(experiment)
    experiment.set_defaults(func=cmd_experiment)

    inspect_trace = sub.add_parser(
        "inspect-trace", help="summarize a --trace JSONL file"
    )
    inspect_trace.add_argument("trace_file", help="JSON-lines trace file")
    inspect_trace.add_argument(
        "--top", type=int, default=10, help="how many slowest spans to show"
    )
    inspect_trace.add_argument(
        "--rules", action="store_true", help="also print the per-rule event census"
    )
    inspect_trace.set_defaults(func=cmd_inspect_trace)

    diff = sub.add_parser(
        "diff",
        help="differential testing against the paper-literal oracle",
        add_help=False,
    )
    diff.add_argument("diff_args", nargs=argparse.REMAINDER)
    diff.set_defaults(func=cmd_diff)

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded world under seeded fault schedules and verify "
        "output is byte-identical to the fault-free golden run",
    )
    chaos.add_argument("--preset", choices=sorted(_CHAOS_PRESETS), default="tiny")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--schedule",
        action="append",
        choices=sorted(CHAOS_SCHEDULES) + ["all"],
        help="fault schedule(s) to run (repeatable; default all)",
    )
    chaos.add_argument(
        "--jobs",
        type=_jobs_type,
        default=4,
        help="worker processes for faulted runs (0 = all cores)",
    )
    chaos.add_argument(
        "--workdir",
        metavar="DIR",
        help="keep scratch datasets and journals in DIR instead of a temp dir",
    )
    chaos.add_argument(
        "--replay",
        metavar="FILE",
        help="replay a recorded chaos regression bundle (JSON) instead of "
        "the preset/seed/schedule flags",
    )
    chaos.add_argument(
        "--record",
        metavar="FILE",
        help="write a regression bundle (preset, seed, schedules, golden "
        "sha256) after a passing run",
    )
    chaos.set_defaults(func=cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="fan a (preset, seed, f) grid across the worker pool with "
        "per-cell checkpoints",
        description=(
            "Expand a grid of (preset, seed, f-value) cells, run them "
            "across the supervised process pool, and checkpoint every "
            "completed cell in the run journal.  A killed sweep resumed "
            "with --resume produces byte-identical per-cell results to an "
            "uninterrupted one.  Stress presets (stress-smoke, stress, "
            "stress-large) generate their worlds shard-by-shard instead "
            "of materializing them (docs/CLI.md, docs/PERFORMANCE.md)."
        ),
    )
    sweep.add_argument(
        "workdir",
        help="sweep working directory (worlds/, cache/, journal/ live here)",
    )
    sweep.add_argument(
        "--preset",
        action="append",
        choices=sorted(_SWEEP_PRESETS),
        metavar="NAME",
        help=(
            "world preset(s) to sweep (repeatable; default tiny); "
            f"one of {', '.join(sorted(_SWEEP_PRESETS))}"
        ),
    )
    sweep.add_argument(
        "--seed",
        action="append",
        type=int,
        metavar="N",
        help="world seed(s) to sweep (repeatable; default 0)",
    )
    sweep.add_argument(
        "--f",
        action="append",
        type=float,
        metavar="F",
        help="Alg 2 threshold value(s) to sweep (repeatable; default 0.5)",
    )
    sweep.add_argument(
        "--kind",
        choices=("dataset", "experiment", "compare"),
        default="dataset",
        help=(
            "what each cell computes: dataset scores a materialized world "
            "(the evaluate pipeline), experiment runs the in-memory f-sweep "
            "pipeline, compare runs the Fig 8 baseline comparison"
        ),
    )
    sweep.add_argument(
        "--out",
        metavar="DIR",
        help="result directory (cells/ and sweep.json; default WORKDIR/results)",
    )
    sweep.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="traces per generated block for stress presets "
        "(default: the preset's own)",
    )
    sweep.add_argument(
        "--journal",
        metavar="DIR",
        help="journal completed cells to DIR (default WORKDIR/journal)",
    )
    sweep.add_argument(
        "--resume",
        metavar="SWEEP_ID",
        help=(
            "continue the journaled sweep SWEEP_ID, skipping verified "
            "cells; a different grid or config fails with the mismatch "
            "named (exit 2)"
        ),
    )
    sweep.add_argument(
        "--no-stub-heuristic",
        action="store_true",
        help="disable the Alg 4 low-visibility stub heuristic",
    )
    sweep.add_argument(
        "--remove-rule",
        choices=("majority", "add_rule"),
        default="majority",
        help="remove-step test (section 4.5 prose vs Alg 3 literal)",
    )
    _add_obs_options(sweep)
    _add_perf_options(sweep)
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        # Forwarded before argparse sees the flags: REMAINDER does not
        # capture a leading option-like token (python issue 17050), and
        # the harness owns its own flag set anyway.
        return cmd_diff(argparse.Namespace(diff_args=argv[1:]))
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # SIGTERM during pooled work is routed here too (perf.pool);
        # children are already terminated and the payload stash restored.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ShardDeadlineExhausted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SHARD_TIMEOUT


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
