"""The chaos harness behind ``mapit chaos``.

Fault tolerance is only trustworthy if it is *exercised*: the harness
builds a seeded synthetic world, records the fault-free golden output,
then re-runs the real CLI (in-process, same code path as a terminal
user) under seeded process-level fault schedules and asserts the final
output is byte-identical to the golden run.  Schedules:

``kill``
    a worker dies abruptly (``os._exit``) on every pooled attempt of
    shard 0 — the supervisor must retry and finally degrade the shard
    to inline execution;
``hang``
    a worker stalls past ``--shard-timeout`` on its first attempt —
    the supervisor must kill it and the retry must succeed;
``torn-journal``
    a journaled run crashes after iteration 1, the journal tail is torn
    mid-line, and ``--resume`` must continue from the last verifiable
    unit;
``enospc``
    journal and cache writes fail with ``ENOSPC`` — durability
    degrades, the run itself completes;
``corrupt-cache``
    a *binary* (v2 struct-packed) ``.mapitc`` entry is bit-flipped
    between runs — the warm run must detect the checksum mismatch and
    re-parse;
``serve``
    the incremental daemon is killed mid-ingest (after one durable
    checkpoint; a later checkpoint write hits ``ENOSPC`` and degrades)
    and resumed from the journal — the resumed output must be
    byte-identical to the batch golden (docs/SERVE.md).

A passing run can be recorded as a small JSON *regression bundle*
(preset, seed, schedules, golden sha256); replaying the bundle re-runs
the schedules and additionally pins the golden output's digest, so a
determinism regression in the simulator or the pipeline is caught even
if every schedule still self-agrees.
"""

from __future__ import annotations

import io
import json
import shutil
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.io.atomic import atomic_write_json, file_sha256
from repro.robust.faults import ChaosInjector, FaultInjector, SimulatedCrash, chaos

#: schedule names, in run order
CHAOS_SCHEDULES = (
    "kill",
    "hang",
    "torn-journal",
    "enospc",
    "corrupt-cache",
    "serve",
)

#: regression-bundle format version
BUNDLE_VERSION = 1

#: deadline used by schedules that need one; hangs last several times
#: longer, so a hung worker always overruns it
_DEADLINE = 0.75
_HANG = 5.0


@dataclass
class ScheduleResult:
    """One schedule's verdict: did the faulted output match the golden?"""

    name: str
    ok: bool
    detail: str = ""

    def line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"schedule {self.name}: {status}{suffix}"


@dataclass
class ChaosOutcome:
    """Everything one harness invocation produced."""

    preset: str
    seed: int
    jobs: int
    golden_sha256: str
    results: List[ScheduleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def lines(self) -> List[str]:
        out = [
            f"chaos: preset={self.preset} seed={self.seed} jobs={self.jobs}",
            f"golden output sha256 {self.golden_sha256}",
        ]
        out.extend(result.line() for result in self.results)
        verdict = "all schedules byte-identical" if self.ok else "DIVERGENCE"
        out.append(f"chaos: {verdict}")
        return out

    def to_bundle(self) -> Dict[str, object]:
        return {
            "version": BUNDLE_VERSION,
            "preset": self.preset,
            "seed": self.seed,
            "jobs": self.jobs,
            "schedules": [result.name for result in self.results],
            "golden_sha256": self.golden_sha256,
        }


def _run_cli(argv: Sequence[str]) -> Tuple[int, str, str]:
    """Run the real CLI in-process, capturing stdout/stderr."""
    from repro import cli

    stdout, stderr = io.StringIO(), io.StringIO()
    with redirect_stdout(stdout), redirect_stderr(stderr):
        code = cli.main(list(argv))
    return code, stdout.getvalue(), stderr.getvalue()


def _build_world(preset: str, seed: int, root: Path) -> Path:
    from repro.io.save import save_scenario
    from repro.sim.scenario import build_scenario

    from repro.cli import _CHAOS_PRESETS

    scenario = build_scenario(_CHAOS_PRESETS[preset](seed))
    return save_scenario(scenario, root / "world")


def _default_config():
    """The MapItConfig ``mapit run`` uses with no algorithm flags."""
    from repro import MapItConfig

    return MapItConfig(f=0.5, enable_stub_heuristic=True, remove_rule="majority")


def _run_to(world: Path, output: Path, *extra: str) -> Tuple[int, str]:
    code, _, stderr = _run_cli(
        ["run", str(world), "--output", str(output), "--json", *extra]
    )
    return code, stderr


def _compare(name: str, code: int, output: Path, golden_sha: str) -> ScheduleResult:
    if code != 0:
        return ScheduleResult(name, False, f"exit code {code}")
    actual = file_sha256(output)
    if actual != golden_sha:
        return ScheduleResult(name, False, f"output sha {actual[:12]} != golden")
    return ScheduleResult(name, True)


def run_chaos(
    preset: str = "tiny",
    seed: int = 0,
    schedules: Optional[Sequence[str]] = None,
    jobs: int = 4,
    workdir: Optional[Union[str, Path]] = None,
) -> ChaosOutcome:
    """Run the fault schedules against one seeded world.

    Builds the world, records the fault-free golden output (serial, no
    faults armed), then runs each schedule and compares output bytes.
    *workdir*, when given, keeps the scratch datasets and journals for
    inspection; otherwise a temp directory is used and removed.
    """
    selected = list(schedules) if schedules else list(CHAOS_SCHEDULES)
    unknown = [name for name in selected if name not in CHAOS_SCHEDULES]
    if unknown:
        raise ValueError(f"unknown chaos schedule(s): {', '.join(unknown)}")
    cleanup = workdir is None
    root = Path(tempfile.mkdtemp(prefix="mapit-chaos-")) if cleanup else Path(workdir)
    root.mkdir(parents=True, exist_ok=True)
    try:
        world = _build_world(preset, seed, root)
        golden = root / "golden.json"
        code, stderr = _run_to(world, golden, "--jobs", "1")
        if code != 0:
            raise RuntimeError(
                f"golden run failed with exit code {code}:\n{stderr}"
            )
        outcome = ChaosOutcome(
            preset=preset, seed=seed, jobs=jobs, golden_sha256=file_sha256(golden)
        )
        runners = {
            "kill": _schedule_kill,
            "hang": _schedule_hang,
            "torn-journal": _schedule_torn_journal,
            "enospc": _schedule_enospc,
            "corrupt-cache": _schedule_corrupt_cache,
            "serve": _schedule_serve,
        }
        for name in selected:
            outcome.results.append(
                runners[name](root, world, outcome.golden_sha256, seed, jobs)
            )
        return outcome
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# schedules


def _schedule_kill(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Kill shard 0's worker on both pooled attempts -> inline rescue."""
    output = root / "out-kill.json"
    injector = ChaosInjector(seed=seed, kill_shards={(0, 1), (0, 2)})
    with chaos(injector):
        code, _ = _run_to(world, output, "--jobs", str(jobs))
    return _compare("kill", code, output, golden_sha)


def _schedule_hang(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Hang shard 1's first attempt past the deadline -> kill + retry."""
    output = root / "out-hang.json"
    injector = ChaosInjector(
        seed=seed, hang_shards={(1, 1)}, hang_seconds=_HANG
    )
    with chaos(injector):
        code, _ = _run_to(
            world, output, "--jobs", str(jobs), "--shard-timeout", str(_DEADLINE)
        )
    return _compare("hang", code, output, golden_sha)


def _crashed_journal_run(
    root: Path, world: Path, seed: int, jobs: int, output: Path
) -> Tuple[Path, str]:
    """A journaled run killed after iteration 1; returns (journal_dir, id)."""
    from repro.robust.journal import run_identity_for

    journal_dir = root / "journal"
    injector = ChaosInjector(seed=seed, crash_at_iteration=1)
    crashed = False
    try:
        with chaos(injector):
            _run_to(world, output, "--jobs", str(jobs), "--journal", str(journal_dir))
    except SimulatedCrash:
        crashed = True
    if not crashed:
        raise RuntimeError("chaos: the run finished before the scheduled crash")
    run_id = run_identity_for(world, _default_config(), "strict")
    return journal_dir, run_id


def _schedule_torn_journal(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Crash mid-run, tear the journal tail, resume -> byte-identical."""
    output = root / "out-torn.json"
    try:
        journal_dir, run_id = _crashed_journal_run(root, world, seed, jobs, output)
    except RuntimeError as exc:
        return ScheduleResult("torn-journal", False, str(exc))
    journal_path = journal_dir / f"{run_id}.journal.jsonl"
    if not journal_path.exists():
        return ScheduleResult("torn-journal", False, "no journal written")
    FaultInjector(seed).corrupt_file(journal_path, kind="truncated_file")
    code, _ = _run_to(
        world,
        output,
        "--jobs",
        str(jobs),
        "--journal",
        str(journal_dir),
        "--resume",
        run_id,
    )
    return _compare("torn-journal", code, output, golden_sha)


def _schedule_enospc(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Journal and cache writes hit ENOSPC -> run still completes."""
    output = root / "out-enospc.json"
    journal_dir = root / "journal-enospc"
    injector = ChaosInjector(
        seed=seed, journal_enospc_seqs=frozenset({0}), cache_enospc=True
    )
    with chaos(injector):
        code, _ = _run_to(
            world, output, "--jobs", str(jobs), "--journal", str(journal_dir)
        )
    return _compare("enospc", code, output, golden_sha)


def _schedule_corrupt_cache(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Bit-flip a *binary* cache entry between runs -> warm re-parse.

    Also pins the entry format: the cold run must have stored a v2
    struct-packed entry (the layout this release writes), so the flip
    lands in binary column data and the checksum verification — not a
    JSON parse error — is what catches it.
    """
    from repro.perf.cache import BINARY_MAGIC

    cache_dir = root / "cache"
    cold = root / "out-cache-cold.json"
    code, _ = _run_to(world, cold, "--jobs", "1", "--cache", str(cache_dir))
    result = _compare("corrupt-cache", code, cold, golden_sha)
    if not result.ok:
        return result
    entries = sorted(cache_dir.glob("*.mapitc"))
    if not entries:
        return ScheduleResult("corrupt-cache", False, "no cache entry stored")
    entry = entries[0]
    data = bytearray(entry.read_bytes())
    if not data.startswith(BINARY_MAGIC):
        return ScheduleResult(
            "corrupt-cache", False, "stored entry is not a v2 binary entry"
        )
    position = len(data) // 2
    data[position] ^= 0xFF
    entry.write_bytes(bytes(data))
    warm = root / "out-cache-warm.json"
    code, _ = _run_to(world, warm, "--jobs", "1", "--cache", str(cache_dir))
    return _compare("corrupt-cache", code, warm, golden_sha)


def _schedule_serve(
    root: Path, world: Path, golden_sha: str, seed: int, jobs: int
) -> ScheduleResult:
    """Kill the serve daemon mid-ingest, resume -> byte-identical.

    The serve dataset is the world minus its traces file; the traces
    stream in through ``--follow``.  The schedule crashes the daemon
    after fold 12 — past the first durable checkpoint (fold 5, journal
    seq 0) — while the *second* checkpoint's journal write (seq 1)
    hits ``ENOSPC`` and degrades.  The resumed ``--once`` run must
    restore the surviving checkpoint, refold the tail, and emit
    exactly the batch golden bytes.
    """
    serve_dataset = root / "serve-dataset"
    if serve_dataset.exists():
        shutil.rmtree(serve_dataset)
    shutil.copytree(world, serve_dataset)
    (serve_dataset / "traces.txt").unlink()
    journal_dir = root / "journal-serve"
    output = root / "out-serve.json"
    serve_args = [
        "serve",
        str(serve_dataset),
        "--follow",
        str(world / "traces.txt"),
        "--once",
        "--json",
        "--output",
        str(output),
        "--journal",
        str(journal_dir),
        "--checkpoint-every",
        "5",
        "--quiesce-every",
        "7",
    ]
    injector = ChaosInjector(
        seed=seed,
        serve_crash_after_folds=12,
        journal_enospc_seqs=frozenset({1}),
    )
    crashed = False
    try:
        with chaos(injector):
            _run_cli(serve_args)
    except SimulatedCrash:
        crashed = True
    if not crashed:
        return ScheduleResult(
            "serve", False, "the daemon finished before the scheduled crash"
        )
    code, _, stderr = _run_cli([*serve_args, "--resume"])
    if "resume: restored checkpoint" not in stderr:
        return ScheduleResult("serve", False, "resume did not restore a checkpoint")
    return _compare("serve", code, output, golden_sha)


# ----------------------------------------------------------------------
# regression bundles


def write_bundle(path: Union[str, Path], outcome: ChaosOutcome) -> None:
    """Record a passing outcome as a replayable regression bundle."""
    atomic_write_json(path, outcome.to_bundle())


def replay_bundle(
    path: Union[str, Path],
    jobs: Optional[int] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> ChaosOutcome:
    """Re-run a recorded bundle; also pins the golden output's digest.

    The recorded ``golden_sha256`` must reproduce exactly — this is the
    harness's determinism tripwire across interpreter and platform
    changes, independent of whether every schedule still self-agrees.
    """
    data = json.loads(Path(path).read_text())
    if data.get("version") != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported chaos bundle version {data.get('version')!r}"
        )
    outcome = run_chaos(
        preset=data["preset"],
        seed=int(data["seed"]),
        schedules=list(data["schedules"]),
        jobs=jobs if jobs is not None else int(data.get("jobs", 4)),
        workdir=workdir,
    )
    expected = data["golden_sha256"]
    if outcome.golden_sha256 != expected:
        outcome.results.append(
            ScheduleResult(
                "golden-pin",
                False,
                f"golden sha {outcome.golden_sha256[:12]} != recorded "
                f"{expected[:12]}",
            )
        )
    else:
        outcome.results.append(ScheduleResult("golden-pin", True))
    return outcome
