"""Structured ingestion errors and the error budget.

MAP-IT's whole premise is extracting correct inferences from dirty
traceroute data (section 4.1), so the pipeline treats input corruption
as a first-class, *quantified* phenomenon: every rejected record
becomes an :class:`IngestError` (source, line number, reason, raw
snippet), and an :class:`ErrorBudget` turns "too many rejects" into a
hard failure so silent mass-corruption can never masquerade as a clean
load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: how much of a rejected raw line is preserved in the error record
SNIPPET_LIMIT = 120

#: detailed IngestError records retained per source; the malformed
#: *count* stays exact beyond this, only per-line detail is dropped so
#: a mass-corrupt multi-gigabyte file cannot balloon memory
MAX_DETAILED_ERRORS = 1000


@dataclass(frozen=True)
class IngestError:
    """One rejected input record."""

    source: str
    line_number: int
    reason: str
    snippet: str

    def to_dict(self) -> Dict:
        return {
            "source": self.source,
            "line_number": self.line_number,
            "reason": self.reason,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.source}:{self.line_number}: {self.reason}"


class ErrorBudgetExceeded(RuntimeError):
    """The malformed fraction of an input exceeded the allowed budget."""

    def __init__(self, source: str, malformed: int, total: int, limit: float) -> None:
        self.source = source
        self.malformed = malformed
        self.total = total
        self.limit = limit
        rate = malformed / total if total else 0.0
        super().__init__(
            f"error budget exceeded for {source}: {malformed}/{total} records "
            f"malformed ({rate:.1%} > {limit:.1%} allowed)"
        )


@dataclass
class ErrorBudget:
    """Abort ingestion when the malformed fraction crosses a threshold.

    ``max_error_rate`` is the allowed malformed fraction, judged over
    the whole source once ingestion finishes; ``min_records`` waives
    enforcement for tiny inputs where a rate is not meaningful (one bad
    line in a two-line file is not a 50% corruption signal).
    """

    max_error_rate: float = 0.1
    min_records: int = 20

    def check(self, source: str, malformed: int, total: int) -> None:
        """Raise :class:`ErrorBudgetExceeded` when over budget."""
        if total < self.min_records or total == 0:
            return
        if malformed / total > self.max_error_rate:
            raise ErrorBudgetExceeded(source, malformed, total, self.max_error_rate)


@dataclass
class IngestReport:
    """Outcome of one resilient ingestion pass over a source."""

    source: str
    mode: str = "strict"
    parsed: int = 0
    malformed: int = 0
    skipped: int = 0
    errors: List[IngestError] = field(default_factory=list)
    quarantine_path: Optional[str] = None

    @property
    def total(self) -> int:
        """Records considered (parsed + malformed; blank lines excluded)."""
        return self.parsed + self.malformed

    @property
    def error_rate(self) -> float:
        return self.malformed / self.total if self.total else 0.0

    @property
    def ok(self) -> bool:
        return self.malformed == 0

    def reasons(self) -> Dict[str, int]:
        """Histogram of rejection reasons (first clause of each)."""
        counts: Dict[str, int] = {}
        for error in self.errors:
            key = error.reason.split(":")[0]
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary_lines(self) -> Iterator[str]:
        yield (
            f"ingest {self.source} [{self.mode}]: {self.parsed} parsed, "
            f"{self.malformed} malformed ({self.error_rate:.2%})"
            + (f", {self.skipped} skipped" if self.skipped else "")
        )
        for reason, count in sorted(self.reasons().items()):
            yield f"  {count} x {reason}"
        if self.quarantine_path:
            yield f"  rejects quarantined in {self.quarantine_path}"
