"""Resilient trace ingestion: strict / lenient / quarantine modes.

The strict parsers in :mod:`repro.traceroute.parse` raise
:class:`~repro.traceroute.parse.TraceParseError` on the first bad
record.  This module wraps them with the three ingestion policies the
pipeline exposes:

``strict``
    any malformed record aborts the load (the historical behaviour,
    but now with a line number and the offending text attached);
``lenient``
    malformed records are skipped and counted, each one captured as a
    structured :class:`~repro.robust.errors.IngestError`;
``quarantine``
    like lenient, but the raw rejected lines are additionally written
    to ``<quarantine_dir>/<source>.rejects.txt`` (with a matching
    ``.errors.jsonl``) so they can be inspected or re-ingested later.

In lenient and quarantine modes an optional
:class:`~repro.robust.errors.ErrorBudget` bounds the malformed
fraction: a load whose reject rate crosses the budget raises
:class:`~repro.robust.errors.ErrorBudgetExceeded` instead of quietly
returning a fraction of the dataset.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.obs.observer import NULL_OBS, Observability
from repro.robust.errors import (
    MAX_DETAILED_ERRORS,
    SNIPPET_LIMIT,
    ErrorBudget,
    IngestError,
    IngestReport,
)
from repro.traceroute.atlas import parse_atlas_measurement
from repro.traceroute.model import Trace
from repro.traceroute.parse import (
    TraceParseError,
    parse_json_trace,
    parse_text_trace,
    trace_format_for_path,
)

MODES = ("strict", "lenient", "quarantine")
FORMATS = ("text", "jsonl", "atlas")


def _check_mode(mode: str, quarantine_dir) -> None:
    if mode not in MODES:
        raise ValueError(f"unknown ingest mode {mode!r}; expected one of {MODES}")
    if mode == "quarantine" and quarantine_dir is None:
        raise ValueError("quarantine mode requires a quarantine_dir")


def _snippet(line: str) -> str:
    return line[:SNIPPET_LIMIT]


def _write_quarantine(
    quarantine_dir: Union[str, Path],
    source: str,
    rejects: List[str],
    errors: List[IngestError],
) -> str:
    from repro.io.atomic import atomic_write_lines  # local: avoids import cycle

    directory = Path(quarantine_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = Path(source).name.replace("/", "_")
    rejects_path = directory / f"{stem}.rejects.txt"
    atomic_write_lines(rejects_path, rejects)
    atomic_write_lines(
        directory / f"{stem}.errors.jsonl",
        (json.dumps(error.to_dict(), separators=(",", ":")) for error in errors),
    )
    return str(rejects_path)


def _parse_atlas_line(line: str, line_number: int) -> Optional[Trace]:
    """Atlas JSON-lines parsing with TraceParseError on malformed JSON.

    Returns None for records Atlas semantics say to skip (IPv6, no
    results) — those are *skips*, not errors.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceParseError(f"invalid JSON: {exc.msg}", line_number, line) from exc
    if not isinstance(record, dict):
        raise TraceParseError(
            f"expected a JSON object, got {type(record).__name__}", line_number, line
        )
    return parse_atlas_measurement(record)


def parse_record(line: str, line_number: int, format: str) -> Optional[Trace]:
    """Parse one stripped, non-blank record of any supported format.

    Returns ``None`` for records the format says to skip silently
    (Atlas IPv6 / no-result measurements); raises
    :class:`~repro.traceroute.parse.TraceParseError` for malformed
    input.  This is the single per-record entry point shared by the
    serial ingester and the sharded parallel workers, so both reject
    exactly the same lines for exactly the same reasons.
    """
    if format == "text":
        return parse_text_trace(line, line_number)
    if format == "jsonl":
        return parse_json_trace(line, line_number)
    return _parse_atlas_line(line, line_number)


def finalize_ingest(
    report: IngestReport,
    rejects: List[str],
    *,
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
) -> IngestReport:
    """Post-parse policy shared by the serial and parallel ingesters:
    judge the error budget over the whole source, write the quarantine
    files, and emit the ingest observability events/counters."""
    # The budget is judged over the whole source, not incrementally:
    # corruption clusters (a damaged block early in a long file) must
    # not abort a load whose overall malformed fraction is acceptable.
    if budget is not None and report.mode != "strict":
        budget.check(report.source, report.malformed, report.total)
    if report.mode == "quarantine" and rejects:
        report.quarantine_path = _write_quarantine(
            quarantine_dir, report.source, rejects, report.errors
        )
    if obs.enabled:
        obs.event(
            "ingest.end",
            source=report.source,
            mode=report.mode,
            parsed=report.parsed,
            malformed=report.malformed,
            skipped=report.skipped,
        )
        obs.inc("ingest.records.parsed", report.parsed)
        obs.inc("ingest.records.malformed", report.malformed)
        obs.inc("ingest.records.skipped", report.skipped)
    return report


def ingest_traces(
    lines: Iterable[str],
    *,
    format: str = "text",
    source: str = "traces",
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
) -> Tuple[List[Trace], IngestReport]:
    """Parse *lines* under an ingestion policy.

    Returns the successfully parsed traces and an
    :class:`~repro.robust.errors.IngestReport` quantifying what was
    rejected and why.
    """
    _check_mode(mode, quarantine_dir)
    if format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; expected one of {FORMATS}")
    report = IngestReport(source=source, mode=mode)
    traces: List[Trace] = []
    rejects: List[str] = []
    with obs.span("ingest"):
        for line_number, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line:
                continue
            if format == "text" and line.startswith("#"):
                continue
            try:
                trace = parse_record(line, line_number, format)
                if trace is None:
                    report.skipped += 1
                    continue
            except TraceParseError as exc:
                if mode == "strict":
                    raise
                report.malformed += 1
                if len(report.errors) < MAX_DETAILED_ERRORS:
                    report.errors.append(
                        IngestError(source, line_number, exc.reason, _snippet(line))
                    )
                if mode == "quarantine":
                    rejects.append(line)
                continue
            report.parsed += 1
            traces.append(trace)
    finalize_ingest(
        report, rejects, budget=budget, quarantine_dir=quarantine_dir, obs=obs
    )
    return traces, report


def ingest_trace_file(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    mode: str = "strict",
    budget: Optional[ErrorBudget] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
) -> Tuple[List[Trace], IngestReport]:
    """Ingest a trace file, inferring the format from its suffix.

    ``*.jsonl`` is the scamper-like JSON-lines format, ``*.atlas`` /
    ``*.atlas.json`` the RIPE Atlas format, anything else the compact
    text format.  Quarantine mode defaults the reject directory to
    ``<file's parent>/quarantine``.
    """
    path = Path(path)
    if format is None:
        format = trace_format_for_path(path.name)
    if mode == "quarantine" and quarantine_dir is None:
        quarantine_dir = path.parent / "quarantine"
    with open(path, errors="replace") as handle:
        return ingest_traces(
            handle,
            format=format,
            source=path.name,
            mode=mode,
            budget=budget,
            quarantine_dir=quarantine_dir,
            obs=obs,
        )
