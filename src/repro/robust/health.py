"""Bundle health: what loaded, what degraded, what was rejected.

:func:`repro.io.bundle.load_bundle` used to be all-or-nothing — one
corrupt optional file aborted the load.  It now produces a
:class:`BundleHealth` report instead: every dataset file gets a
:class:`DatasetStatus` (``ok`` / ``missing`` / ``degraded`` /
``corrupt``), optional datasets degrade to empty with a warning, and
the trace ingest report (parsed / malformed / quarantined counts) is
attached so callers — the CLI prints this — can see exactly how clean
their inputs were.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.robust.errors import IngestReport

#: datasets whose absence or corruption must never abort a load
OPTIONAL_DATASETS = (
    "ixp.txt",
    "as2org.txt",
    "relationships.txt",
    "hostnames.txt",
    "groundtruth.txt",
    "manifest.json",
)


@dataclass(frozen=True)
class DatasetStatus:
    """Load outcome for one dataset file."""

    name: str
    status: str  # "ok" | "missing" | "degraded" | "corrupt"
    detail: str = ""

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.name}: {self.status}{tail}"


@dataclass
class BundleHealth:
    """Aggregate health of one :func:`load_bundle` call."""

    statuses: List[DatasetStatus] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    checksum_failures: List[str] = field(default_factory=list)
    ingest: Optional[IngestReport] = None
    #: entry format version ("v1"/"v2") when traces came from a verified
    #: bundle-cache hit; None on a cold parse or uncached load
    cache_format: Optional[str] = None

    def record(self, name: str, status: str, detail: str = "") -> None:
        self.statuses.append(DatasetStatus(name, status, detail))
        if status in ("degraded", "corrupt"):
            self.warnings.append(f"{name} {status}: {detail}" if detail else f"{name} {status}")

    @property
    def ok(self) -> bool:
        """True when nothing degraded, failed a checksum, or was rejected."""
        return (
            not self.warnings
            and not self.checksum_failures
            and (self.ingest is None or self.ingest.ok)
        )

    def status_of(self, name: str) -> Optional[str]:
        for status in self.statuses:
            if status.name == name:
                return status.status
        return None

    def summary_lines(self) -> Iterator[str]:
        """Human-readable health summary (the CLI prints these)."""
        if self.ingest is not None:
            yield from self.ingest.summary_lines()
        if self.cache_format is not None:
            yield f"cache: hit (entry format {self.cache_format})"
        degraded = [s for s in self.statuses if s.status in ("degraded", "corrupt")]
        for status in degraded:
            yield f"warning: {status}"
        for failure in self.checksum_failures:
            yield f"warning: checksum mismatch: {failure}"
        if self.ok:
            yield "bundle health: ok"
        else:
            yield (
                f"bundle health: degraded "
                f"({len(degraded)} dataset(s) degraded, "
                f"{len(self.checksum_failures)} checksum failure(s), "
                f"{self.ingest.malformed if self.ingest else 0} record(s) rejected)"
            )
