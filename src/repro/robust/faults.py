"""Deterministic fault injection for ingestion-robustness testing.

Degradation has to be testable to be trusted, so this module damages
datasets the way the wild damages them — along a small taxonomy of
fault kinds — with a seeded RNG so every corruption is reproducible:

======================  ==================================================
kind                    what it does
======================  ==================================================
``garbled_line``        replaces a record with separator-free junk
``invalid_address``     rewrites an address into an out-of-range quad
``null_field``          nulls/removes a required field (dst)
``byte_flip``           flips one byte high (non-ASCII) inside a record
``truncated_file``      cuts a file mid-line, as a crash mid-write would
``empty_file``          truncates a file to zero bytes
======================  ==================================================

Line-level kinds are guaranteed to make the record unparseable, which
keeps accounting exact: a corruptor that *sometimes* produces a
still-valid line would make "lenient mode skipped N records" untestable.
The injector also damages in-memory traces (cycles, all-gap hop lists,
truncations) to exercise the sanitizer, and can simulate a crash partway
through a write for atomicity tests.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.traceroute.model import Hop, Trace

#: line-level fault kinds, applicable to individual records
LINE_FAULTS = ("garbled_line", "invalid_address", "null_field", "byte_flip")
#: file-level fault kinds, applicable to whole files
FILE_FAULTS = ("truncated_file", "empty_file")
#: in-memory trace fault kinds, applicable to Trace objects
TRACE_FAULTS = ("cycle", "all_gaps", "truncated_hops")
#: engine-logic fault kinds, applicable via :func:`engine_fault`
ENGINE_FAULTS = ("count_inflate", "member_high")

FAULT_KINDS = LINE_FAULTS + FILE_FAULTS


class SimulatedCrash(RuntimeError):
    """Raised by :meth:`FaultInjector.crash_after` to model a mid-write kill."""


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: what was damaged, where, and how."""

    kind: str
    target: str
    line_number: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f":{self.line_number}" if self.line_number is not None else ""
        return f"{self.kind} @ {self.target}{where}"


class FaultInjector:
    """Seedable, deterministic corruptor for datasets and traces."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # line-level faults

    def corrupt_line(self, line: str, kind: str, format: str = "text") -> str:
        """Damage one record so it can no longer be parsed."""
        if kind == "garbled_line":
            # '#' is excluded: a junk line starting with it would be
            # skipped as a comment instead of counted as malformed.
            junk = "".join(
                self._rng.choice("!%&?~^=;") for _ in range(self._rng.randint(6, 18))
            )
            return junk if format == "text" else "{" + junk
        if kind == "invalid_address":
            bad = f"{self._rng.randint(300, 999)}.0.0.{self._rng.randint(300, 999)}"
            if format == "text":
                head, _, _ = line.partition("|")
                return f"{head}|{bad}|{bad}"
            record = self._load_json(line)
            record["dst"] = bad
            return json.dumps(record, separators=(",", ":"))
        if kind == "null_field":
            if format == "text":
                head, _, tail = line.partition("|")
                rest = tail.partition("|")[2]
                return f"{head}||{rest}"  # empty dst field
            record = self._load_json(line)
            record["dst"] = None
            return json.dumps(record, separators=(",", ":"))
        if kind == "byte_flip":
            # Damage one byte so the line is guaranteed malformed
            # wherever it lands.  Text format: flip the high bit of a
            # byte in the dst/hops region — never a digit, dot, or
            # separator afterwards.  JSON: overwrite with a raw control
            # character, which json.loads rejects in any position.
            if format == "text":
                payload_start = line.find("|") + 1
                if payload_start >= len(line):
                    payload_start = 0
                # Never flip a space: 0x20 | 0x80 is U+00A0, which
                # str.split() still treats as whitespace, leaving the
                # line parseable.
                candidates = [
                    index
                    for index in range(payload_start, len(line))
                    if not line[index].isspace()
                ]
                position = self._rng.choice(candidates) if candidates else 0
                flipped = chr(ord(line[position]) | 0x80)
            else:
                position = self._rng.randrange(len(line)) if line else 0
                flipped = "\x00"
            return line[:position] + flipped + line[position + 1 :]
        raise ValueError(f"unknown line fault kind {kind!r}")

    def _load_json(self, line: str) -> dict:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return {"dst": None}
        return record if isinstance(record, dict) else {"dst": None}

    def corrupt_lines(
        self,
        lines: Iterable[str],
        rate: float,
        kinds: Sequence[str] = LINE_FAULTS,
        format: str = "text",
    ) -> Tuple[List[str], List[FaultRecord]]:
        """Corrupt a *rate* fraction of lines; returns (lines, faults).

        The returned :class:`FaultRecord` list names the exact 1-based
        line numbers damaged, so tests can reconstruct the clean subset.
        """
        out: List[str] = []
        faults: List[FaultRecord] = []
        for line_number, line in enumerate(lines, start=1):
            if line.strip() and self._rng.random() < rate:
                kind = self._rng.choice(list(kinds))
                out.append(self.corrupt_line(line, kind, format))
                faults.append(FaultRecord(kind, "lines", line_number))
            else:
                out.append(line)
        return out, faults

    # ------------------------------------------------------------------
    # file- and dataset-level faults

    def corrupt_file(
        self,
        path: Union[str, Path],
        kind: str = "byte_flip",
        rate: float = 0.05,
        format: Optional[str] = None,
    ) -> List[FaultRecord]:
        """Damage one file in place; returns the injected faults."""
        path = Path(path)
        if format is None:
            format = "jsonl" if path.suffix == ".jsonl" else "text"
        if kind == "empty_file":
            path.write_bytes(b"")
            return [FaultRecord(kind, path.name)]
        if kind == "truncated_file":
            data = path.read_bytes()
            if len(data) < 2:
                return []
            # Cut somewhere in the second half, never exactly on a
            # newline boundary, leaving a partial final record.
            cut = self._rng.randrange(len(data) // 2, len(data) - 1)
            while cut > 1 and data[cut - 1 : cut] == b"\n":
                cut -= 1
            path.write_bytes(data[:cut])
            return [FaultRecord(kind, path.name, detail=f"cut at byte {cut}")]
        if kind in LINE_FAULTS:
            lines = path.read_text().splitlines()
            damaged, faults = self.corrupt_lines(lines, rate, (kind,), format)
            path.write_text("\n".join(damaged) + ("\n" if damaged else ""))
            return [
                FaultRecord(fault.kind, path.name, fault.line_number)
                for fault in faults
            ]
        raise ValueError(f"unknown file fault kind {kind!r}")

    def corrupt_dataset(
        self,
        directory: Union[str, Path],
        rate: float = 0.05,
        kinds: Sequence[str] = LINE_FAULTS,
        targets: Sequence[str] = ("traces.txt", "traces.jsonl"),
    ) -> List[FaultRecord]:
        """Damage the trace files of a dataset directory in place."""
        root = Path(directory)
        faults: List[FaultRecord] = []
        line_kinds = [kind for kind in kinds if kind in LINE_FAULTS]
        file_kinds = [kind for kind in kinds if kind in FILE_FAULTS]
        for name in targets:
            path = root / name
            if not path.exists():
                continue
            if line_kinds:
                format = "jsonl" if path.suffix == ".jsonl" else "text"
                lines = path.read_text().splitlines()
                damaged, line_faults = self.corrupt_lines(
                    lines, rate, line_kinds, format
                )
                path.write_text("\n".join(damaged) + ("\n" if damaged else ""))
                faults.extend(
                    FaultRecord(fault.kind, name, fault.line_number)
                    for fault in line_faults
                )
            for kind in file_kinds:
                faults.extend(self.corrupt_file(path, kind))
        return faults

    # ------------------------------------------------------------------
    # in-memory trace faults

    def corrupt_trace(self, trace: Trace, kind: str) -> Trace:
        """Damage one in-memory trace along the sanitizer's taxonomy."""
        hops = list(trace.hops)
        if kind == "all_gaps":
            return trace.replace_hops(tuple(Hop(None) for _ in hops))
        if kind == "truncated_hops":
            if len(hops) > 1:
                keep = self._rng.randrange(1, len(hops))
                hops = hops[:keep]
            return trace.replace_hops(tuple(hops))
        if kind == "cycle":
            responsive = [i for i, hop in enumerate(hops) if hop.responded]
            if len(responsive) >= 2:
                first, last = responsive[0], responsive[-1]
                if last - first > 1:
                    hops[last] = hops[first]
            return trace.replace_hops(tuple(hops))
        raise ValueError(f"unknown trace fault kind {kind!r}")

    def corrupt_traces(
        self,
        traces: Iterable[Trace],
        rate: float,
        kinds: Sequence[str] = TRACE_FAULTS,
    ) -> Tuple[List[Trace], List[FaultRecord]]:
        """Damage a *rate* fraction of in-memory traces."""
        out: List[Trace] = []
        faults: List[FaultRecord] = []
        for index, trace in enumerate(traces):
            if self._rng.random() < rate:
                kind = self._rng.choice(list(kinds))
                out.append(self.corrupt_trace(trace, kind))
                faults.append(FaultRecord(kind, "traces", index))
            else:
                out.append(trace)
        return out, faults

    # ------------------------------------------------------------------
    # crash simulation

    def crash_after(self, items: Iterable, count: int) -> Iterator:
        """Yield *count* items, then raise :class:`SimulatedCrash`.

        Wrap the line iterator feeding a writer with this to model the
        process being killed partway through emitting a file.
        """
        for index, item in enumerate(items):
            if index >= count:
                raise SimulatedCrash(f"simulated crash after {count} item(s)")
            yield item


# ----------------------------------------------------------------------
# process-level chaos


@dataclass
class ChaosInjector:
    """Seeded process-level fault schedule for the chaos harness.

    One injector describes *when* faults fire, keyed by deterministic
    coordinates — ``(shard_index, attempt)`` for worker faults, journal
    sequence numbers for write faults, iteration numbers for crashes —
    so the same schedule replays identically on every run.  Worker
    faults are pid-guarded: they only fire in forked children, never in
    the parent, so the supervisor's inline degradation (and every
    serial/golden run) always stays clean.

    ``kill_shards``
        ``(shard_index, attempt)`` pairs whose worker dies abruptly
        (``os._exit(137)``) mid-shard;
    ``hang_shards``
        pairs whose worker stalls ``hang_seconds`` — long enough to
        blow any reasonable ``--shard-timeout``;
    ``journal_enospc_seqs``
        journal sequence numbers whose append fails with ``ENOSPC``
        (fires once per seq);
    ``cache_enospc``
        the next ``.mapitc`` cache store fails with ``ENOSPC``
        (fires once);
    ``crash_at_iteration``
        raise :class:`SimulatedCrash` after multipass iteration *k* is
        journaled — the resume test's kill switch;
    ``serve_crash_after_folds``
        raise :class:`SimulatedCrash` right after the serve daemon's
        *k*-th trace fold — the serve schedule's kill switch (fires
        once, so the resumed run streams through unharmed).
    """

    seed: int = 0
    kill_shards: FrozenSet[Tuple[int, int]] = frozenset()
    hang_shards: FrozenSet[Tuple[int, int]] = frozenset()
    hang_seconds: float = 5.0
    journal_enospc_seqs: FrozenSet[int] = frozenset()
    cache_enospc: bool = False
    crash_at_iteration: Optional[int] = None
    serve_crash_after_folds: Optional[int] = None
    _parent_pid: int = field(default_factory=os.getpid)
    _fired: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.kill_shards = frozenset(tuple(pair) for pair in self.kill_shards)
        self.hang_shards = frozenset(tuple(pair) for pair in self.hang_shards)
        self.journal_enospc_seqs = frozenset(self.journal_enospc_seqs)

    def maybe_fault_shard(self, index: int, attempt: int) -> None:
        """Kill or hang the *worker* running (shard, attempt) — children only."""
        if os.getpid() == self._parent_pid:
            return
        if (index, attempt) in self.kill_shards:
            os._exit(137)
        if (index, attempt) in self.hang_shards:
            time.sleep(self.hang_seconds)

    def maybe_fail_write(self, kind: str, seq: int = 0) -> None:
        """Raise ``ENOSPC`` for a scheduled journal/cache write (once each)."""
        key = f"{kind}:{seq}"
        if key in self._fired:
            return
        scheduled = (kind == "journal" and seq in self.journal_enospc_seqs) or (
            kind == "cache" and self.cache_enospc
        )
        if scheduled:
            self._fired.add(key)
            raise OSError(errno.ENOSPC, f"chaos: no space left ({kind} #{seq})")

    def maybe_crash_iteration(self, iteration: int) -> None:
        """Model the process dying right after iteration *k* was journaled."""
        if iteration == self.crash_at_iteration:
            raise SimulatedCrash(
                f"simulated crash after multipass iteration {iteration}"
            )

    def maybe_crash_fold(self, folds: int) -> None:
        """Model the serve daemon dying right after fold *k* (fires once)."""
        if folds == self.serve_crash_after_folds and "serve_fold" not in self._fired:
            self._fired.add("serve_fold")
            raise SimulatedCrash(f"simulated crash after serve fold {folds}")


#: the armed injector, if any; forked workers inherit it copy-on-write
_ACTIVE_CHAOS: Optional[ChaosInjector] = None


def active_chaos() -> Optional[ChaosInjector]:
    """The injector armed by :func:`chaos`, or None outside a chaos run."""
    return _ACTIVE_CHAOS


@contextmanager
def chaos(injector: ChaosInjector) -> Iterator[ChaosInjector]:
    """Arm *injector* for the duration of the context.

    Fault hooks (:meth:`ChaosInjector.maybe_fault_shard` in pool
    workers, write hooks in the journal and cache) consult
    :func:`active_chaos`, so arming must happen *before* the pool forks.
    """
    global _ACTIVE_CHAOS
    previous = _ACTIVE_CHAOS
    _ACTIVE_CHAOS = injector
    try:
        yield injector
    finally:
        _ACTIVE_CHAOS = previous


# ----------------------------------------------------------------------
# engine-logic faults


def _half_selected(half, rate: float, seed: int) -> bool:
    """Deterministic per-half selection: the same (seed, half) always
    decides the same way, independent of call order or call count."""
    return random.Random(f"{seed}:{half[0]}:{half[1]}").random() < rate


@contextmanager
def engine_fault(kind: str = "count_inflate", rate: float = 0.3, seed: int = 0):
    """Temporarily seed a counting bug into the production engine.

    The differential harness (:mod:`repro.diff`) needs a way to prove
    it *would* catch a real tally bug, and the shrinker needs genuine
    diverging worlds to minimize.  Within the context,
    :meth:`repro.core.engine.Engine.plurality` misbehaves on a
    deterministic *rate* fraction of halves:

    ``count_inflate``
        reports the winning count one higher than it is, so the f
        threshold (and the add_rule remove test) passes where it
        should fail;
    ``member_high``
        records the *highest*-numbered member AS of the winning
        sibling group instead of the most frequent one.

    The paper-literal oracle is untouched, so every misbehaving half
    that changes an inference becomes a divergence.  The original
    method is restored on exit, even on error.
    """
    if kind not in ENGINE_FAULTS:
        raise ValueError(f"unknown engine fault kind {kind!r}")
    from repro.core.engine import Engine, Plurality

    original = Engine.plurality

    def faulty(self, half):
        result = original(self, half)
        if result is None or not _half_selected(half, rate, seed):
            return result
        if kind == "count_inflate":
            return Plurality(
                result.canonical_as,
                result.member_as,
                result.count + 1,
                result.total,
            )
        _, member_counts, _ = self.count_groups(half)
        members = member_counts.get(result.canonical_as, {})
        member = max(members) if members else result.member_as
        return Plurality(result.canonical_as, member, result.count, result.total)

    Engine.plurality = faulty
    try:
        yield
    finally:
        Engine.plurality = original
