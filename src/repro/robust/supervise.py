"""Supervised shard execution: deadlines, retries, inline degradation.

:func:`repro.perf.pool.fork_map` used to hand its shards to a bare
``Pool.map`` — one hung or OOM-killed worker stalled or aborted the
whole run.  This module is the replacement substrate: shards are
dispatched individually via ``apply_async``, each dispatch is watched
by the parent (a start *sentinel* from the worker arms the per-shard
deadline; the worker's ``Process.exitcode`` exposes abrupt deaths), and
a shard that times out, crashes, or raises is retried with capped
exponential backoff.  The final attempt runs *inline in the parent* —
the degraded path is the serial path, so a poisoned pool can never fail
a run that serial mode would complete.

Deadlines are a user contract, so the inline attempt enforces them too
when it can (``SIGALRM`` on the main thread of a POSIX process); a
shard that exceeds its deadline everywhere raises
:class:`ShardDeadlineExhausted`, which the CLI maps to exit code 124.

Every attempt, timeout, death, and degradation feeds the
``robust.supervise.*`` metrics (docs/OBSERVABILITY.md) and, when a
budget is armed, the :class:`~repro.robust.errors.ErrorBudget` over the
fraction of shards that needed rescue.

This is the only module allowed to talk to ``multiprocessing.Pool``
directly — mapitlint rule FORK002 enforces that every other call site
goes through :func:`repro.perf.pool.fork_map`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.observer import NULL_OBS, Observability
from repro.robust.errors import ErrorBudget

#: shard index range, as in :mod:`repro.perf.pool`
Shard = Tuple[int, int]

#: how often the parent polls sentinels, results, and worker exitcodes
_POLL_INTERVAL = 0.02

#: how long after a worker's death we keep waiting for an in-flight
#: result before declaring its shard lost (the pool's result-handler
#: thread may still deliver a value the worker sent before dying)
_DEATH_GRACE = 0.25


class ShardFailure(RuntimeError):
    """A shard attempt failed (worker death, timeout, or exception)."""


class ShardDeadlineExhausted(RuntimeError):
    """A shard missed its deadline on every attempt, including inline.

    The CLI maps this to exit code 124 (the ``timeout(1)`` convention).
    """

    def __init__(self, shard: Shard, attempts: int, timeout: float) -> None:
        self.shard = shard
        self.attempts = attempts
        self.timeout = timeout
        super().__init__(
            f"shard {shard} exceeded its {timeout:g}s deadline on all "
            f"{attempts} attempt(s), including inline execution"
        )


@dataclass(frozen=True)
class SuperviseConfig:
    """Policy knobs for one supervised map.

    ``timeout`` is the per-shard deadline in seconds (``None`` = no
    deadline; worker deaths are still detected and retried).
    ``max_attempts`` counts every try including the final inline one,
    so ``max_attempts=3`` means two pooled tries then the in-parent
    fallback.  Backoff before retry *n* is
    ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds.
    """

    timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")


def default_shard_timeout() -> Optional[float]:
    """The per-shard deadline used when a caller does not pass one.

    Reads ``MAPIT_SHARD_TIMEOUT`` (seconds; the CLI's
    ``--shard-timeout`` overrides it) and falls back to no deadline.
    """
    raw = os.environ.get("MAPIT_SHARD_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


# ----------------------------------------------------------------------
# worker side

#: parent-created sentinel queue, inherited by forked workers; carries
#: ("start", shard_index, attempt, pid) messages that arm deadlines
_SENTINEL_QUEUE: Any = None


def _quiet_worker_signals() -> None:
    """Pool initializer: workers must not traceback-spray on interrupt.

    The parent owns interrupt handling (terminate children, restore
    state, exit 130).  Workers ignore SIGINT, and drop any inherited
    SIGTERM handler back to the default so ``Pool.terminate`` stops
    them silently instead of replaying the parent's interrupt logic.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _supervised_entry(
    worker: Callable[[Shard], Any], shard: Shard, index: int, attempt: int
) -> Tuple[int, int, Any]:
    """Runs in the worker: announce the start, then run the shard."""
    queue = _SENTINEL_QUEUE
    if queue is not None:
        queue.put((index, attempt, os.getpid()))
    from repro.robust.faults import active_chaos

    chaos = active_chaos()
    if chaos is not None:
        chaos.maybe_fault_shard(index, attempt)
    return index, attempt, worker(shard)


# ----------------------------------------------------------------------
# parent side


def _alarm_usable() -> bool:
    """SIGALRM-based inline deadlines need POSIX and the main thread."""
    return hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )


def _run_inline(
    worker: Callable[[Shard], Any],
    shard: Shard,
    attempts: int,
    config: SuperviseConfig,
) -> Any:
    """The final, in-parent attempt — the serial path, deadline-armed.

    When a deadline is configured and enforceable (``SIGALRM``), an
    overrun raises :class:`ShardDeadlineExhausted`; without enforcement
    the shard simply runs to completion, exactly like serial mode.
    """
    if config.timeout is None or not _alarm_usable():
        return worker(shard)

    def _on_alarm(signum, frame):
        raise ShardDeadlineExhausted(shard, attempts, config.timeout)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, config.timeout)
    try:
        return worker(shard)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


def supervised_pool_map(
    worker: Callable[[Shard], Any],
    ranges: Sequence[Shard],
    jobs: int,
    *,
    config: Optional[SuperviseConfig] = None,
    obs: Observability = NULL_OBS,
    budget: Optional[ErrorBudget] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Run *worker* over *ranges* in a supervised ``fork`` pool.

    The caller (:func:`repro.perf.pool.fork_map`) has already stashed
    the shared payload; results come back in shard order, exactly as
    ``pool.map`` would return them.  Raises whatever the worker raises
    (after retries and the inline fallback), or
    :class:`ShardDeadlineExhausted` when a deadline can't be met even
    inline.

    *on_result*, when given, fires in the parent with ``(index, value)``
    the moment a shard's result lands — exactly once per shard, in
    completion (not shard) order.  Checkpointing callers (the sweep
    orchestrator) use it to make each shard durable before the map as a
    whole finishes; a crash mid-map then loses only in-flight shards.
    """
    config = config or SuperviseConfig()
    global _SENTINEL_QUEUE
    context = multiprocessing.get_context("fork")
    results: List[Any] = [_UNSET] * len(ranges)
    attempts: Dict[int, int] = {index: 0 for index in range(len(ranges))}
    todo = list(range(len(ranges)))
    rescued: set = set()
    round_number = 0
    pool = None
    try:
        while todo:
            round_number += 1
            if round_number > 1:
                delay = min(
                    config.backoff_cap,
                    config.backoff_base * (2 ** (round_number - 2)),
                )
                time.sleep(delay)
            pooled, inline = [], []
            for index in todo:
                attempts[index] += 1
                if attempts[index] >= config.max_attempts:
                    inline.append(index)
                else:
                    pooled.append(index)
            done: Dict[int, Any] = {}
            failed: Dict[int, str] = {}
            if pooled:
                if pool is None:
                    _SENTINEL_QUEUE = context.SimpleQueue()
                    pool = context.Pool(
                        processes=min(jobs, len(ranges)),
                        initializer=_quiet_worker_signals,
                    )
                done, failed = _dispatch_round(
                    pool, worker, ranges, pooled, attempts, config, obs,
                    on_result=on_result,
                )
                if failed:
                    # A worker died or overran inside this pool; assume
                    # nothing about its shared queues and rebuild.
                    _shutdown_pool(pool)
                    pool = None
                    _SENTINEL_QUEUE = None
            for index, value in done.items():
                results[index] = value
            for index in inline:
                obs.inc("robust.supervise.degraded_inline")
                rescued.add(index)
                results[index] = _run_inline(
                    worker, ranges[index], attempts[index], config
                )
                if on_result is not None:
                    on_result(index, results[index])
            rescued.update(failed)
            todo = sorted(failed)
            if todo:
                obs.inc("robust.supervise.retries", len(todo))
    finally:
        if pool is not None:
            _shutdown_pool(pool)
        _SENTINEL_QUEUE = None
    if budget is not None:
        budget.check("supervise", len(rescued), len(ranges))
    assert not any(value is _UNSET for value in results)
    return results


def _shutdown_pool(pool) -> None:
    """Terminate children promptly and reap them."""
    pool.terminate()
    pool.join()


def _pool_processes(pool) -> Dict[int, Any]:
    """pid -> Process for the pool's current workers (best effort)."""
    processes = {}
    for process in getattr(pool, "_pool", []) or []:
        if process.pid is not None:
            processes[process.pid] = process
    return processes


def _dispatch_round(
    pool,
    worker: Callable[[Shard], Any],
    ranges: Sequence[Shard],
    todo: Sequence[int],
    attempts: Dict[int, int],
    config: SuperviseConfig,
    obs: Observability,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> Tuple[Dict[int, Any], Dict[int, str]]:
    """Dispatch one attempt of every shard in *todo*; watch them all.

    Returns ``(done, failed)`` — shard index to result value, and shard
    index to failure reason (``timeout`` / ``worker-died`` /
    ``error: ...``).  Never raises for a shard failure; the caller
    decides between retry and inline degradation.  *on_result* fires as
    each successful result arrives, before the round returns.
    """
    queue = _SENTINEL_QUEUE
    tasks = {}
    for index in todo:
        obs.inc("robust.supervise.dispatched")
        tasks[index] = pool.apply_async(
            _supervised_entry, (worker, ranges[index], index, attempts[index])
        )
    known = _pool_processes(pool)
    started: Dict[int, Tuple[float, int]] = {}
    dying_since: Dict[int, float] = {}
    done: Dict[int, Any] = {}
    failed: Dict[int, str] = {}
    while len(done) + len(failed) < len(tasks):
        while queue is not None and not queue.empty():
            index, attempt, pid = queue.get()
            if attempt == attempts.get(index):
                started[index] = (time.monotonic(), pid)
        known.update(_pool_processes(pool))
        now = time.monotonic()
        for index, task in tasks.items():
            if index in done or index in failed:
                continue
            if task.ready():
                try:
                    _, _, value = task.get()
                    done[index] = value
                except BaseException as exc:  # noqa: BLE001 - retried, then surfaced inline
                    obs.inc("robust.supervise.worker_errors")
                    failed[index] = f"error: {type(exc).__name__}: {exc}"
                else:
                    # Outside the try: a raising callback must surface,
                    # not be misread as a shard failure and retried.
                    if on_result is not None:
                        on_result(index, value)
                continue
            start = started.get(index)
            if start is None:
                continue
            start_time, pid = start
            if config.timeout is not None and now - start_time > config.timeout:
                obs.inc("robust.supervise.timeouts")
                failed[index] = "timeout"
                _kill_worker(pid)
                continue
            process = known.get(pid)
            if process is not None and process.exitcode is not None:
                if index not in dying_since:
                    dying_since[index] = now
                elif now - dying_since[index] > _DEATH_GRACE:
                    obs.inc("robust.supervise.worker_deaths")
                    failed[index] = f"worker-died: exit code {process.exitcode}"
        if len(done) + len(failed) < len(tasks):
            time.sleep(_POLL_INTERVAL)
    return done, failed


def _kill_worker(pid: int) -> None:
    """Free a hung pool slot; the pool replaces the killed worker."""
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
