"""Crash-safe run journal: durable units, byte-identical resume.

A long MAP-IT run has three kinds of durable unit, each a pure function
of what precedes it: the parsed traces (already durable via the
``.mapitc`` :class:`~repro.perf.cache.BundleCache`, which lives in the
same directory and is keyed by the same source sha256), the merged
interface graph, and each multipass iteration's engine state.  The
journal records the latter two as they complete, so ``mapit run
--resume <run-id>`` can replay the journal, verify checksums, and
continue from the last durable unit — and because every iteration is a
pure function of the state it starts from, the continuation is
byte-identical to an uninterrupted run.

Layout, next to the ``.mapitc`` cache entries::

    <dir>/<run-id>.journal.jsonl     # one JSON record per unit
    <dir>/<run-id>.<name>.blob       # pickled graph / engine snapshots

The run id is a sha256 prefix over (traces sha256, format, ingest
mode, config repr) — the inputs that determine the result — so a
journal can never be resumed against different inputs by accident.

Each journal line carries its own sha256; appends are flushed and
fsynced.  A crash mid-append leaves a *torn tail*: :meth:`RunJournal.read`
verifies every line and stops at the first damaged one, so the units
before it remain usable.  A failed write (ENOSPC) disables journaling
for the rest of the run — durability degrades, the run itself never
fails because of its journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.io.atomic import atomic_write_bytes, file_sha256
from repro.obs.observer import NULL_OBS, Observability
from repro.robust.faults import active_chaos

#: bump when the record or blob layout changes; old journals then key
#: to a different run id and are simply not resumed
JOURNAL_VERSION = 1


def run_identity(
    source_sha256: str, config: Any, mode: str, format: str
) -> str:
    """The run id for a (traces, config, ingest mode) combination.

    16 hex chars of a sha256 over everything that determines the run's
    result.  ``config`` contributes through its ``repr`` —
    :class:`~repro.core.config.MapItConfig` is a frozen dataclass, so
    the repr is canonical.
    """
    material = "\n".join(
        (
            "mapit-run-journal",
            str(JOURNAL_VERSION),
            source_sha256,
            format,
            mode,
            repr(config),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def run_identity_for(directory: Union[str, Path], config: Any, mode: str) -> str:
    """The run id for a dataset directory (locates the traces file)."""
    from repro.traceroute.parse import trace_format_for_path

    root = Path(directory)
    for name in ("traces.txt", "traces.jsonl"):
        path = root / name
        if path.exists():
            return run_identity(
                file_sha256(path), config, mode, trace_format_for_path(name)
            )
    raise FileNotFoundError(f"no traces.txt or traces.jsonl in {root}")


class RunJournal:
    """Append-only journal of one run's completed units."""

    def __init__(
        self,
        directory: Union[str, Path],
        run_id: str,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.directory = Path(directory)
        self.run_id = run_id
        self.obs = obs
        #: set after a failed write: the run continues unjournaled
        self.disabled = False
        self._seq = 0

    @property
    def path(self) -> Path:
        return self.directory / f"{self.run_id}.journal.jsonl"

    def _blob_path(self, name: str) -> Path:
        return self.directory / f"{self.run_id}.{name}.blob"

    # -- writing -----------------------------------------------------------

    def append(self, unit: str, payload: Dict[str, Any]) -> bool:
        """Durably append one completed unit; returns whether it stuck.

        The line's sha256 covers ``(seq, unit, payload)`` in canonical
        JSON, so a torn or bit-flipped tail is detectable on read.
        """
        if self.disabled:
            return False
        record = {"seq": self._seq, "unit": unit, "payload": payload}
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        record["sha256"] = hashlib.sha256(body.encode()).hexdigest()
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            chaos = active_chaos()
            if chaos is not None:
                chaos.maybe_fail_write("journal", self._seq)
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            # A full disk costs resumability, never the run itself.
            self.disabled = True
            self.obs.inc("robust.journal.write_failed")
            return False
        self._seq += 1
        self.obs.inc("robust.journal.units")
        return True

    def store_blob(self, name: str, data: bytes) -> Optional[str]:
        """Atomically write a unit's binary payload; returns its sha256."""
        if self.disabled:
            return None
        try:
            chaos = active_chaos()
            if chaos is not None:
                chaos.maybe_fail_write("journal", self._seq)
            self.directory.mkdir(parents=True, exist_ok=True)
            return atomic_write_bytes(self._blob_path(name), data)
        except OSError:
            self.disabled = True
            self.obs.inc("robust.journal.write_failed")
            return None

    def append_with_blob(
        self,
        unit: str,
        name: str,
        data: bytes,
        extra: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Store *data* as a blob, then journal the unit referencing it."""
        sha = self.store_blob(name, data)
        if sha is None:
            return False
        payload = dict(extra or {})
        payload["blob"] = name
        payload["sha256"] = sha
        return self.append(unit, payload)

    # -- reading -----------------------------------------------------------

    def read(self) -> List[Dict[str, Any]]:
        """The journal's verified records, in order.

        Stops at the first line that is torn, corrupt, or out of
        sequence — everything before it is trusted, everything after
        is not.  Leaves the journal positioned to append after the
        last verified record (a resumed run's new units overwrite the
        torn tail's blob names as needed; the journal file itself is
        rewritten to the verified prefix so seq numbers stay dense).
        """
        records: List[Dict[str, Any]] = []
        try:
            # errors="replace": a bit-flipped byte that breaks UTF-8 must
            # surface as a torn line (sha mismatch), not a decode crash
            with open(self.path, errors="replace") as handle:
                lines = handle.read().splitlines()
        except OSError:
            self._seq = 0
            return records
        torn = False
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                stored_sha = record.pop("sha256")
                body = json.dumps(record, sort_keys=True, separators=(",", ":"))
                ok = (
                    stored_sha == hashlib.sha256(body.encode()).hexdigest()
                    and record.get("seq") == index
                )
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                torn = True
                self.obs.inc("robust.journal.torn_tail")
                break
            records.append(record)
        self._seq = len(records)
        if torn:
            self._truncate_to(records)
        return records

    def _truncate_to(self, records: List[Dict[str, Any]]) -> None:
        """Rewrite the journal as its verified prefix (drop a torn tail)."""
        try:
            lines = []
            for record in records:
                body = json.dumps(record, sort_keys=True, separators=(",", ":"))
                stamped = dict(record)
                stamped["sha256"] = hashlib.sha256(body.encode()).hexdigest()
                lines.append(
                    json.dumps(stamped, sort_keys=True, separators=(",", ":"))
                )
            atomic_write_bytes(
                self.path, ("\n".join(lines) + "\n" if lines else "").encode()
            )
        except OSError:
            self.disabled = True
            self.obs.inc("robust.journal.write_failed")

    def units(self, unit: str) -> List[Dict[str, Any]]:
        """The payloads of every verified record of kind *unit*, in order.

        Convenience over :meth:`read` for callers (the sweep
        orchestrator) that checkpoint many homogeneous units and replay
        them on resume.
        """
        return [
            record["payload"]
            for record in self.read()
            if record.get("unit") == unit
        ]

    def load_blob(self, name: str, expected_sha256: str) -> Optional[bytes]:
        """A unit's binary payload, or None if missing or corrupt."""
        try:
            data = self._blob_path(name).read_bytes()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != expected_sha256:
            self.obs.inc("robust.journal.blob_corrupt")
            return None
        return data


# ----------------------------------------------------------------------
# the journaled pipeline


def journaled_run(
    bundle,
    config=None,
    obs: Optional[Observability] = None,
    jobs: int = 1,
    shard_timeout: Optional[float] = None,
    *,
    journal: RunJournal,
    resume: bool = False,
):
    """Run MAP-IT over *bundle*, journaling each durable unit.

    Mirrors :func:`repro.core.run_mapit` exactly — same graph builders,
    same engine, same result — with two additions: completed units go
    to *journal*, and with ``resume=True`` the run first replays the
    journal and continues from the last durable unit.  Either way the
    returned result is byte-identical (``to_json``) to an uninterrupted
    unjournaled run.
    """
    from repro.core.mapit import MapIt
    from repro.core.results import MapItResult
    from repro.graph.neighbors import build_interface_graph
    from repro.traceroute.sanitize import sanitize_traces

    effective_obs = obs if obs is not None else NULL_OBS

    graph_record: Optional[Dict[str, Any]] = None
    iteration_records: List[Dict[str, Any]] = []
    result_record: Optional[Dict[str, Any]] = None
    if resume:
        for record in journal.read():
            unit = record.get("unit")
            if unit == "graph":
                graph_record = record
            elif unit == "iteration":
                iteration_records.append(record)
            elif unit == "result":
                result_record = record

    if result_record is not None:
        # The crashed run actually finished; replay its result.
        effective_obs.inc("robust.journal.replayed")
        return MapItResult.from_json(result_record["payload"]["json"])

    graph = None
    if graph_record is not None:
        payload = graph_record["payload"]
        data = journal.load_blob(payload["blob"], payload["sha256"])
        if data is not None:
            try:
                graph = pickle.loads(data)
            except Exception:  # noqa: BLE001 - a bad blob is just a rebuild
                effective_obs.inc("robust.journal.blob_corrupt")
                graph = None
    if graph is None:
        if getattr(bundle, "graph", None) is not None:
            # The fused loader already built (and instrumented) the
            # graph at load time; journal it like a fresh build so a
            # resume can replay it.
            graph = bundle.graph
        elif jobs > 1:
            from repro.perf.graph import build_graph_parallel

            graph = build_graph_parallel(
                bundle.traces, jobs, obs=effective_obs, shard_timeout=shard_timeout
            )
        elif obs is not None:
            with obs.span("sanitize"):
                report = sanitize_traces(bundle.traces)
            graph = build_interface_graph(
                report.traces, all_addresses=report.all_addresses, obs=obs
            )
        else:
            report = sanitize_traces(bundle.traces)
            graph = build_interface_graph(
                report.traces, all_addresses=report.all_addresses
            )
        journal.append_with_blob(
            "graph", "graph", pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
        )

    snapshot = None
    for record in reversed(iteration_records):
        payload = record["payload"]
        data = journal.load_blob(payload["blob"], payload["sha256"])
        if data is None:
            continue
        try:
            snapshot = pickle.loads(data)
        except Exception:  # noqa: BLE001 - a bad blob is just an older resume point
            effective_obs.inc("robust.journal.blob_corrupt")
            continue
        break
    if resume and effective_obs.enabled:
        effective_obs.event(
            "journal.resume",
            run_id=journal.run_id,
            iteration=snapshot.iterations if snapshot is not None else 0,
            graph_replayed=graph_record is not None,
        )

    def on_iteration(iteration: int, snap) -> None:
        journal.append_with_blob(
            "iteration",
            f"iter{iteration:04d}",
            pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL),
            extra={"iteration": iteration},
        )
        chaos = active_chaos()
        if chaos is not None:
            chaos.maybe_crash_iteration(iteration)

    mapit = MapIt(
        graph,
        bundle.ip2as,
        org=bundle.as2org,
        rel=bundle.relationships,
        config=config,
        obs=obs,
    )
    result = mapit.run(on_iteration=on_iteration, resume=snapshot)
    journal.append("result", {"json": result.to_json()})
    return result
