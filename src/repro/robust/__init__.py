"""Fault tolerance: resilient ingestion, fault injection, bundle health.

MAP-IT exists because traceroute data is dirty (section 4.1); this
package makes the *pipeline* honor the same premise.  It provides

- :mod:`repro.robust.ingest` — strict / lenient / quarantine parsing
  policies over every trace format, with structured
  :class:`~repro.robust.errors.IngestError` records and an
  :class:`~repro.robust.errors.ErrorBudget` that refuses to let mass
  corruption masquerade as a clean load;
- :mod:`repro.robust.faults` — a deterministic, seedable corruptor
  covering the fault taxonomy (garbled lines, invalid addresses, null
  fields, byte flips, truncated and empty files) plus crash simulation,
  so degradation is measurable rather than anecdotal;
- :mod:`repro.robust.health` — the :class:`~repro.robust.health.BundleHealth`
  report ``load_bundle`` now returns alongside its data.

See ``docs/ROBUSTNESS.md`` for the error-mode contract.
"""

from repro.robust.errors import (
    ErrorBudget,
    ErrorBudgetExceeded,
    IngestError,
    IngestReport,
)
from repro.robust.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRecord,
    SimulatedCrash,
)
from repro.robust.health import BundleHealth, DatasetStatus, OPTIONAL_DATASETS
from repro.robust.ingest import ingest_trace_file, ingest_traces

__all__ = [
    "BundleHealth",
    "DatasetStatus",
    "ErrorBudget",
    "ErrorBudgetExceeded",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRecord",
    "IngestError",
    "IngestReport",
    "OPTIONAL_DATASETS",
    "SimulatedCrash",
    "ingest_trace_file",
    "ingest_traces",
]
