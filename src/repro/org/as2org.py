"""Sibling AS groups (CAIDA AS2ORG-style).

MAP-IT treats sibling ASes — distinct AS numbers run by one
organization — as a single AS when counting neighbor sets, and never
infers inter-AS links *between* siblings (section 4.9).  The paper uses
CAIDA's WHOIS-derived AS2ORG data plus 140 hand-curated pairs, and
notes the data is incomplete; the simulator can export a deliberately
truncated sibling list to exercise that.

Internally this is a union-find over AS numbers, with a canonical
representative per organization.  ``canonical(asn)`` is the identity
used wherever the algorithm compares "the same AS".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple


class AS2Org:
    """Union-find over AS numbers keyed by organization."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._org_names: Dict[int, str] = {}

    def _find(self, asn: int) -> int:
        parent = self._parent
        if asn not in parent:
            return asn
        root = asn
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(asn, asn) != root:
            parent[asn], asn = root, parent[asn]
        return root

    def add_siblings(self, asns: Iterable[int], org_name: str = "") -> None:
        """Declare all of *asns* to belong to one organization."""
        asns = list(asns)
        if not asns:
            return
        roots = sorted({self._find(asn) for asn in asns})
        canonical = roots[0]
        for asn in asns:
            self._parent.setdefault(asn, asn)
        for root in roots:
            self._parent[root] = canonical
        if org_name:
            self._org_names[canonical] = org_name

    def add_pair(self, a: int, b: int, org_name: str = "") -> None:
        """Declare a single sibling pair (the paper's extra 140 pairs)."""
        self.add_siblings((a, b), org_name)

    def canonical(self, asn: int) -> int:
        """Representative AS for *asn*'s organization (itself if alone)."""
        return self._find(asn)

    def are_siblings(self, a: int, b: int) -> bool:
        """True when *a* and *b* belong to the same organization.

        An AS is trivially its own sibling.
        """
        return self._find(a) == self._find(b)

    def siblings_of(self, asn: int) -> Set[int]:
        """All known ASes in *asn*'s organization, including itself."""
        root = self._find(asn)
        group = {a for a in self._parent if self._find(a) == root}
        group.add(asn)
        return group

    def org_name(self, asn: int) -> str:
        """Organization name, when known."""
        return self._org_names.get(self._find(asn), "")

    def groups(self) -> Iterator[Set[int]]:
        """Iterate non-trivial sibling groups."""
        by_root: Dict[int, Set[int]] = {}
        for asn in self._parent:
            by_root.setdefault(self._find(asn), set()).add(asn)
        for group in by_root.values():
            if len(group) > 1:
                yield group

    def dump_lines(self) -> Iterator[str]:
        """Serialize as ``asn1 asn2 ...|orgname`` lines."""
        for group in self.groups():
            members = sorted(group)
            name = self._org_names.get(self._find(members[0]), "")
            yield " ".join(str(asn) for asn in members) + "|" + name

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "AS2Org":
        """Parse the format produced by :meth:`dump_lines`."""
        org = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            members_text, _, name = line.partition("|")
            org.add_siblings((int(tok) for tok in members_text.split()), name)
        return org

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "AS2Org":
        """Build from sibling pairs."""
        org = cls()
        for a, b in pairs:
            org.add_pair(a, b)
        return org
