"""AS-to-organization (sibling) mapping, in the style of CAIDA AS2ORG."""

from repro.org.as2org import AS2Org

__all__ = ["AS2Org"]
