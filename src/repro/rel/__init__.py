"""AS relationship dataset (CAIDA serial-1 style) and classification."""

from repro.rel.relationships import (
    LinkType,
    P2C,
    P2P,
    RelationshipDataset,
)

__all__ = ["LinkType", "P2C", "P2P", "RelationshipDataset"]
