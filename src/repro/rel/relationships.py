"""AS relationship dataset, in the style of CAIDA's serial-1 files.

The paper uses CAIDA's AS Relationships dataset for three things:

* identifying *ISP ASes* — ASes with at least one non-sibling customer
  — whose complement are the *stub ASes* the Alg 4 heuristic targets;
* the Convention baseline's provider check;
* breaking results down by relationship type in Table 1 (ISP transit,
  peer, stub transit), where an AS absent from the dataset is treated
  as a stub.

Serial-1 line format: ``provider|customer|-1`` or ``peer|peer|0``.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.org.as2org import AS2Org

#: Relationship codes matching CAIDA serial-1.
P2C = -1
P2P = 0


class LinkType(Enum):
    """Table 1 relationship categories for an inferred link."""

    ISP_TRANSIT = "ISP Transit"
    PEER = "Peer"
    STUB_TRANSIT = "Stub Transit"


class RelationshipDataset:
    """Provider/customer and peer relationships between ASes."""

    def __init__(self) -> None:
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._known: Set[int] = set()

    def add_p2c(self, provider: int, customer: int) -> None:
        """Record that *provider* transits *customer*."""
        self._customers.setdefault(provider, set()).add(customer)
        self._providers.setdefault(customer, set()).add(provider)
        self._known.update((provider, customer))

    def add_p2p(self, a: int, b: int) -> None:
        """Record a settlement-free peering between *a* and *b*."""
        self._peers.setdefault(a, set()).add(b)
        self._peers.setdefault(b, set()).add(a)
        self._known.update((a, b))

    def providers(self, asn: int) -> Set[int]:
        return set(self._providers.get(asn, ()))

    def customers(self, asn: int) -> Set[int]:
        return set(self._customers.get(asn, ()))

    def peers(self, asn: int) -> Set[int]:
        return set(self._peers.get(asn, ()))

    def knows(self, asn: int) -> bool:
        """True when *asn* appears anywhere in the dataset."""
        return asn in self._known

    def relationship(self, a: int, b: int) -> Optional[int]:
        """:data:`P2C` when *a* transits *b*, :data:`P2P` for peers, else None.

        Note the direction: ``relationship(provider, customer) == P2C``.
        """
        if b in self._customers.get(a, ()):
            return P2C
        if b in self._peers.get(a, ()):
            return P2P
        return None

    def is_transit_pair(self, a: int, b: int) -> bool:
        """True when either AS transits the other."""
        return (
            b in self._customers.get(a, ())
            or a in self._customers.get(b, ())
        )

    def provider_of(self, a: int, b: int) -> Optional[int]:
        """Which of *a*, *b* is the provider, when they have a transit link."""
        if b in self._customers.get(a, ()):
            return a
        if a in self._customers.get(b, ()):
            return b
        return None

    def is_isp(self, asn: int, org: Optional[AS2Org] = None) -> bool:
        """True for ASes with at least one non-sibling customer.

        This is the paper's definition of an ISP AS; everything else is
        a stub for the Alg 4 heuristic.
        """
        customers = self._customers.get(asn, ())
        if org is None:
            return bool(customers)
        return any(not org.are_siblings(asn, customer) for customer in customers)

    def is_stub(self, asn: int, org: Optional[AS2Org] = None) -> bool:
        """True for ASes with no (non-sibling) customers or unknown ASes."""
        return not self.is_isp(asn, org)

    def classify_link(
        self, a: int, b: int, org: Optional[AS2Org] = None
    ) -> LinkType:
        """Table 1 category for a link between *a* and *b*.

        Per section 5.4: an AS absent from the dataset makes the link
        Stub Transit; a transit pair is Stub Transit when the customer
        side is a stub and ISP Transit otherwise; anything without a
        transit link is a Peer.
        """
        if not self.knows(a) or not self.knows(b):
            return LinkType.STUB_TRANSIT
        provider = self.provider_of(a, b)
        if provider is None:
            return LinkType.PEER
        customer = b if provider == a else a
        if self.is_stub(customer, org):
            return LinkType.STUB_TRANSIT
        return LinkType.ISP_TRANSIT

    def all_ases(self) -> Set[int]:
        return set(self._known)

    def __len__(self) -> int:
        edges = sum(len(c) for c in self._customers.values())
        peer_edges = sum(len(p) for p in self._peers.values()) // 2
        return edges + peer_edges

    def dump_lines(self) -> Iterator[str]:
        """Serialize in CAIDA serial-1 format."""
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield f"{provider}|{customer}|{P2C}"
        emitted = set()
        for a in sorted(self._peers):
            for b in sorted(self._peers[a]):
                key = (min(a, b), max(a, b))
                if key not in emitted:
                    emitted.add(key)
                    yield f"{key[0]}|{key[1]}|{P2P}"

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "RelationshipDataset":
        """Parse CAIDA serial-1 format lines."""
        dataset = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            a_text, b_text, code_text = line.split("|")[:3]
            a, b, code = int(a_text), int(b_text), int(code_text)
            if code == P2C:
                dataset.add_p2c(a, b)
            elif code == P2P:
                dataset.add_p2p(a, b)
            else:
                raise ValueError(f"unknown relationship code {code} in {line!r}")
        return dataset
