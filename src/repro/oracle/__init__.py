"""Paper-literal reference implementation of MAP-IT (the *oracle*).

This package exists solely to check :mod:`repro.core`: it restates
Algorithms 1–4 of the paper directly, with none of the production
engine's caching, observability, or ordering tricks, so that the
differential harness (:mod:`repro.diff`) can compare the two
implementations inference-by-inference on seeded synthetic worlds.

Independence is the whole point — the oracle must never import
anything from ``repro.core`` (enforced statically by mapitlint rule
ORA001), because a shared helper would share the bug the harness is
supposed to catch.  It consumes only the algorithm's *inputs*: the
interface graph, the IP2AS mapper, sibling data, and relationships.
"""

from repro.oracle.reference import (
    OracleConfig,
    OracleRecord,
    OracleResult,
    oracle_run,
)

__all__ = ["OracleConfig", "OracleRecord", "OracleResult", "oracle_run"]
