"""MAP-IT Algorithms 1–4, restated slowly and literally from the paper.

Every mechanism below is written straight from the paper's section 4
(and, where the prose is ambiguous, the documented interpretation in
docs/ALGORITHM.md §8) using plain dictionaries and loops:

* **Alg 2 (direct inferences)** — per pass, for every half with enough
  neighbors, tally the opposite halves of its neighbor set by
  organization; a strict plurality of a real AS that covers ``f·|N|``
  and differs from the half's current mapping becomes an inference.
* **§4.4.2 (indirect inferences)** — the other side of each new direct
  inference is mapped to the same AS (skipped on IXP LANs).
* **§4.4.3 (contradictions)** — dual inferences drop the backward
  half; divergent other sides detach the two cross-imposed indirect
  updates.
* **§4.4.4 (adjacent inverse inferences)** — remove the backward
  inference, or flag every conflicting inference uncertain when the
  backward half's link other side also carries a direct inference.
* **Alg 3 (remove step)** — demote direct inferences whose connected
  AS no longer dominates, sweep unsupported indirects.
* **§4.6 (convergence)** — stop when the exact inference state
  repeats at the end of a remove step.
* **Alg 4 (stub heuristic)** — single-neighbor forward halves next to
  known stub ASes.

No caching, no observability, no shared code with :mod:`repro.core` —
the two implementations may only agree because the algorithm agrees.
Determinism comes from sorting every iteration domain outright.

Every state change is appended to a ``journal`` (iteration, pass,
rule, half, tally), which the differential harness prints when the
production engine disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

#: A half is ``(address, direction)``; directions match the paper's
#: ``_f`` / ``_b`` rendering.  Redeclared here rather than imported so
#: the oracle compiles against nothing but the input objects.
FORWARD = True
BACKWARD = False

Half = Tuple[int, bool]

REMOVE_MAJORITY = "majority"
REMOVE_ADD_RULE = "add_rule"


@dataclass(frozen=True)
class OracleConfig:
    """The paper's knobs, restated (mirrors the semantics the
    production config documents, without importing it)."""

    f: float = 0.5
    min_neighbors: int = 2
    remove_rule: str = REMOVE_MAJORITY
    max_iterations: int = 20
    enable_stub_heuristic: bool = True
    fix_dual_inferences: bool = True
    fix_divergent_other_sides: bool = True
    fix_inverse_inferences: bool = True
    enable_remove_step: bool = True


@dataclass
class _Direct:
    """A live direct inference (Alg 2 / Alg 4)."""

    local_as: int
    remote_as: int
    uncertain: bool = False
    via_stub: bool = False


@dataclass
class _Indirect:
    """A live indirect inference (§4.4.2), tied to its supporting
    direct inference's half."""

    local_as: int
    remote_as: int
    source: Half
    detached: bool = False


@dataclass(frozen=True)
class OracleRecord:
    """One final inference, in a shape the harness can compare."""

    address: int
    forward: bool
    local_as: int
    remote_as: int
    kind: str  # "direct" | "indirect" | "stub"
    uncertain: bool

    @property
    def half(self) -> Half:
        return (self.address, self.forward)


@dataclass
class OracleResult:
    """Everything an oracle run produced."""

    confident: List[OracleRecord]
    uncertain: List[OracleRecord]
    iterations: int
    converged: bool
    journal: List[dict] = field(default_factory=list)
    #: the final per-half mapping snapshot (§4.4.5), for reporting
    final_visible: Dict[Half, int] = field(default_factory=dict)

    def by_half(self) -> Dict[Half, OracleRecord]:
        """Final inferences keyed by half (confident and uncertain)."""
        table: Dict[Half, OracleRecord] = {}
        for record in self.confident + self.uncertain:
            table[record.half] = record
        return table

    def journal_for(self, half: Half) -> List[dict]:
        """Every journal entry that touched *half*."""
        return [
            entry
            for entry in self.journal
            if entry.get("address") == half[0] and entry.get("forward") == half[1]
        ]


class _OracleRun:
    """One execution of the literal algorithm over one input world."""

    def __init__(self, graph, ip2as, org, rel, config: OracleConfig) -> None:
        self.graph = graph
        self.ip2as = ip2as
        self.org = org
        self.rel = rel
        self.config = config
        self.direct: Dict[Half, _Direct] = {}
        self.indirect: Dict[Half, _Indirect] = {}
        self.inferred_this_step: set = set()
        self.visible: Dict[Half, int] = {}
        self.uncertain_log: Dict[Half, _Direct] = {}
        self.journal: List[dict] = []
        self.iteration = 0
        self.pass_number = 0

    # -- journal ----------------------------------------------------------

    def note(self, rule: str, half: Half, **detail) -> None:
        entry = {
            "iteration": self.iteration,
            "pass": self.pass_number,
            "rule": rule,
            "address": half[0],
            "forward": half[1],
        }
        entry.update(detail)
        self.journal.append(entry)

    # -- mappings (§4.4.1: per half, snapshot per pass) -------------------

    def original_asn(self, address: int) -> int:
        return self.ip2as.asn(address)

    def half_asn(self, half: Half) -> int:
        if half in self.visible:
            return self.visible[half]
        return self.original_asn(half[0])

    def canonical(self, asn: int) -> int:
        if asn <= 0:
            return asn
        return self.org.canonical(asn)

    def refresh_visible(self) -> None:
        """Take the snapshot the next pass reads (§4.4.5): direct
        inferences override indirect ones; detached indirects
        contribute nothing."""
        visible: Dict[Half, int] = {}
        for half in sorted(self.indirect):
            if not self.indirect[half].detached:
                visible[half] = self.indirect[half].remote_as
        for half in sorted(self.direct):
            visible[half] = self.direct[half].remote_as
        self.visible = visible

    # -- neighbor tallies (Alg 2 lines 2–3) -------------------------------

    def neighbors(self, half: Half) -> FrozenSet[int]:
        return self.graph.neighbors(half[0], half[1])

    def tally(self, half: Half) -> Tuple[Dict[int, int], Dict[int, Dict[int, int]], int]:
        """COUNT over the neighbor set of *half*, grouped by
        organization (§4.4.1), counting the member ASes inside each
        group.  The member of N_F(a) contributed by next hop b is the
        *backward* half of b, and vice versa (Fig 3)."""
        neighbor_direction = not half[1]
        groups: Dict[int, int] = {}
        members: Dict[int, Dict[int, int]] = {}
        total = 0
        for neighbor in sorted(self.neighbors(half)):
            asn = self.half_asn((neighbor, neighbor_direction))
            group = self.canonical(asn)
            groups[group] = groups.get(group, 0) + 1
            inner = members.setdefault(group, {})
            inner[asn] = inner.get(asn, 0) + 1
            total += 1
        return groups, members, total

    @staticmethod
    def most_frequent(members: Dict[int, int], default: int) -> int:
        """§4.4.1: a winning sibling group is recorded as its most
        frequent member AS; lowest ASN breaks ties."""
        best = default
        best_count = 0
        for asn in sorted(members):
            if members[asn] > best_count:
                best, best_count = asn, members[asn]
        return best

    def plurality(self, half: Half) -> Optional[Tuple[int, int, int, int]]:
        """Alg 2 line 2's AS_N: ``(canonical, member, count, total)``
        when one real AS appears strictly more than every other group,
        else None."""
        groups, members, total = self.tally(half)
        if not groups:
            return None
        counts = sorted(groups.values(), reverse=True)
        best_count = counts[0]
        if len(counts) > 1 and counts[1] == best_count:
            return None
        winners = [group for group, count in groups.items() if count == best_count]
        winner = winners[0]
        if winner <= 0:
            return None
        member = self.most_frequent(members[winner], winner)
        return (winner, member, best_count, total)

    # -- the add step (§4.4, Alg 2) ---------------------------------------

    def candidate_halves(self) -> List[Half]:
        """Alg 2 line 1: halves with at least ``min_neighbors``."""
        minimum = self.config.min_neighbors
        halves = []
        for address in self.graph.forward:
            if len(self.graph.forward[address]) >= minimum:
                halves.append((address, FORWARD))
        for address in self.graph.backward:
            if len(self.graph.backward[address]) >= minimum:
                halves.append((address, BACKWARD))
        return sorted(halves)

    def other_side_half(self, half: Half) -> Optional[Half]:
        other = self.graph.other_side(half[0])
        if other is None:
            return None
        return (other, not half[1])

    def direct_pass(self, candidates: List[Half]) -> List[Half]:
        """One greedy Alg 2 pass; only a single direct inference may be
        made on each half per add step (§4.4.2)."""
        added: List[Half] = []
        f = self.config.f
        for half in candidates:
            if half in self.direct or half in self.inferred_this_step:
                continue
            plurality = self.plurality(half)
            if plurality is None:
                continue
            _, member, count, total = plurality
            if count < total * f:
                continue
            previous = self.half_asn(half)
            if self.canonical(previous) == plurality[0]:
                continue
            self.direct[half] = _Direct(local_as=previous, remote_as=member)
            self.inferred_this_step.add(half)
            added.append(half)
            self.note("direct", half, local=previous, remote=member,
                      count=count, total=total)
        return added

    def propagate_indirect(self, new_directs: List[Half]) -> None:
        """§4.4.2: map the other side of each new direct inference to
        the same AS; IXP LANs are multipoint, so skipped."""
        for half in new_directs:
            if self.ip2as.is_ixp(half[0]):
                continue
            partner = self.other_side_half(half)
            if partner is None:
                continue
            direct = self.direct[half]
            self.indirect[partner] = _Indirect(
                local_as=direct.local_as,
                remote_as=direct.remote_as,
                source=half,
            )
            self.note("indirect", partner, local=direct.local_as,
                      remote=direct.remote_as, source=half[0])

    def fix_dual_inferences(self) -> None:
        """§4.4.3 first contradiction: both halves of one interface
        inferred toward different organizations — keep forward, drop
        backward (Fig 4's third-party signature).  Interfaces without
        an original mapping are left alone."""
        for half in sorted(self.direct):
            if half[1] != BACKWARD or half not in self.direct:
                continue
            forward_half = (half[0], FORWARD)
            if forward_half not in self.direct:
                continue
            if self.original_asn(half[0]) <= 0:
                continue
            forward_remote = self.canonical(self.direct[forward_half].remote_as)
            backward_remote = self.canonical(self.direct[half].remote_as)
            if forward_remote == backward_remote:
                continue
            self.remove_direct(half)
            self.note("dual", half)

    def flag_divergent_other_sides(self) -> None:
        """§4.4.3 second contradiction: a link's two endpoints inferred
        toward different organizations — the pairing itself is presumed
        wrong, so the two cross-imposed indirect updates are detached."""
        for half in sorted(self.direct):
            partner = self.other_side_half(half)
            if partner is None or partner not in self.direct:
                continue
            if half > partner:
                continue
            if self.original_asn(half[0]) <= 0 or self.original_asn(partner[0]) <= 0:
                continue
            if self.canonical(self.direct[half].remote_as) == self.canonical(
                self.direct[partner].remote_as
            ):
                continue
            for indirect_half, source in ((partner, half), (half, partner)):
                indirect = self.indirect.get(indirect_half)
                if indirect is not None and indirect.source == source and not indirect.detached:
                    indirect.detached = True
                    self.note("detach", indirect_half, source=source[0])

    def fix_inverse_inferences(self) -> None:
        """§4.4.4: a backward inference B→A on interface *b* adjacent
        to the inverse forward inference A→B.  Remove the backward one
        (the forward is nearer the monitors) — unless *b*'s link other
        side also carries a direct inference, in which case every
        conflicting inference is kept but flagged uncertain.  All
        matching predecessors are considered."""
        backward_halves = [
            half
            for half in sorted(self.direct)
            if half[1] == BACKWARD and not self.direct[half].uncertain
        ]
        for half in backward_halves:
            backward = self.direct.get(half)
            if backward is None:
                continue
            local = self.canonical(backward.local_as)
            remote = self.canonical(backward.remote_as)
            matching: List[Half] = []
            for predecessor in sorted(self.graph.n_backward(half[0])):
                forward_half = (predecessor, FORWARD)
                forward = self.direct.get(forward_half)
                if forward is None:
                    continue
                if (
                    self.canonical(forward.local_as) != remote
                    or self.canonical(forward.remote_as) != local
                ):
                    continue
                matching.append(forward_half)
            if not matching:
                continue
            partner = self.other_side_half(half)
            if partner is not None and partner in self.direct:
                backward.uncertain = True
                self.uncertain_log.setdefault(half, backward)
                self.note("uncertain", half)
                for forward_half in matching:
                    forward = self.direct[forward_half]
                    forward.uncertain = True
                    self.uncertain_log.setdefault(forward_half, forward)
                    self.note("uncertain", forward_half)
            else:
                self.remove_direct(half)
                self.note("inverse_removed", half)

    def add_step(self) -> None:
        """Alg 1 line 3: repeat the four sub-steps to fixpoint."""
        self.inferred_this_step = set()
        candidates = self.candidate_halves()
        while True:
            self.pass_number += 1
            new_directs = self.direct_pass(candidates)
            self.propagate_indirect(new_directs)
            if self.config.fix_dual_inferences:
                self.fix_dual_inferences()
            if self.config.fix_divergent_other_sides:
                self.flag_divergent_other_sides()
            if self.config.fix_inverse_inferences:
                self.fix_inverse_inferences()
            self.refresh_visible()
            if not new_directs:
                break

    # -- the remove step (§4.5, Alg 3) ------------------------------------

    def remove_direct(self, half: Half) -> None:
        """Discard a direct inference and every indirect it supports."""
        if half not in self.direct:
            return
        del self.direct[half]
        for key in sorted(self.indirect):
            if self.indirect[key].source == half:
                del self.indirect[key]

    def still_holds(self, half: Half, direct: _Direct) -> bool:
        """Alg 3 line 4's dominance test, under the configured reading."""
        target = self.canonical(direct.remote_as)
        if self.config.remove_rule == REMOVE_ADD_RULE:
            plurality = self.plurality(half)
            return (
                plurality is not None
                and plurality[0] == target
                and plurality[2] >= plurality[3] * self.config.f
            )
        groups, _, total = self.tally(half)
        count = groups.get(target, 0)
        return 2 * count > total

    def supporter_for(self, half: Half) -> Optional[Half]:
        """Alg 3 line 5: a live direct inference whose link other side
        is *half* (verified both ways for asymmetric judgements)."""
        partner = self.other_side_half(half)
        if partner is None or partner not in self.direct:
            return None
        if self.other_side_half(partner) == half:
            return partner
        return None

    def remove_step(self) -> None:
        while True:
            doomed = [
                half
                for half in sorted(self.direct)
                if not self.direct[half].via_stub
                and not self.still_holds(half, self.direct[half])
            ]
            for half in doomed:
                direct = self.direct.pop(half)
                supporter = self.supporter_for(half)
                if supporter is not None:
                    self.indirect[half] = _Indirect(
                        local_as=direct.local_as,
                        remote_as=direct.remote_as,
                        source=supporter,
                    )
                    self.note("demoted", half, source=supporter[0])
                else:
                    self.note("removed", half)
            swept = [
                half
                for half in sorted(self.indirect)
                if self.indirect[half].source not in self.direct
            ]
            for half in swept:
                del self.indirect[half]
                self.note("swept", half)
            self.refresh_visible()
            if not doomed and not swept:
                break

    # -- the stub heuristic (§4.8, Alg 4) ---------------------------------

    def stub_step(self) -> None:
        for address in sorted(self.graph.forward):
            members = self.graph.forward[address]
            if len(members) != 1:
                continue
            half = (address, FORWARD)
            if half in self.direct or half in self.indirect:
                continue
            (neighbor,) = members
            neighbor_half = (neighbor, BACKWARD)
            backward_half = (address, BACKWARD)
            if backward_half in self.direct or backward_half in self.indirect:
                continue
            if neighbor_half in self.direct or neighbor_half in self.indirect:
                continue
            own_as = self.half_asn(half)
            neighbor_as = self.half_asn(neighbor_half)
            if neighbor_as <= 0 or own_as <= 0:
                continue
            if self.canonical(own_as) == self.canonical(neighbor_as):
                continue
            if not self.rel.is_stub(neighbor_as, self.org):
                continue
            if not self.rel.knows(neighbor_as):
                continue
            self.direct[half] = _Direct(
                local_as=own_as, remote_as=neighbor_as, via_stub=True
            )
            self.note("stub", half, local=own_as, remote=neighbor_as)
            partner = self.other_side_half(half)
            if partner is not None and not self.ip2as.is_ixp(address):
                self.indirect[partner] = _Indirect(
                    local_as=own_as, remote_as=neighbor_as, source=half
                )
                self.note("stub_indirect", partner, source=address)
        self.refresh_visible()

    # -- convergence (§4.6) and collection --------------------------------

    def state_snapshot(self) -> FrozenSet:
        """The exact inference state the §4.6 stopping rule compares."""
        directs = frozenset(
            (half, rec.local_as, rec.remote_as, rec.uncertain, "d")
            for half, rec in self.direct.items()
        )
        indirects = frozenset(
            (half, rec.remote_as, rec.source, rec.detached, "i")
            for half, rec in self.indirect.items()
        )
        return frozenset((directs, indirects))

    def collect(self) -> Tuple[List[OracleRecord], List[OracleRecord]]:
        """The two output lists of §4.4.4.  Uncertain pairs typically
        cycle forever (§4.6), so the uncertain output is the union over
        the run minus halves that ended as live direct inferences."""
        confident: List[OracleRecord] = []
        uncertain: List[OracleRecord] = []
        for half in sorted(self.uncertain_log):
            if half in self.direct:
                continue
            rec = self.uncertain_log[half]
            uncertain.append(
                OracleRecord(
                    address=half[0],
                    forward=half[1],
                    local_as=rec.local_as,
                    remote_as=rec.remote_as,
                    kind="stub" if rec.via_stub else "direct",
                    uncertain=True,
                )
            )
        for half in sorted(self.direct):
            rec = self.direct[half]
            record = OracleRecord(
                address=half[0],
                forward=half[1],
                local_as=rec.local_as,
                remote_as=rec.remote_as,
                kind="stub" if rec.via_stub else "direct",
                uncertain=rec.uncertain,
            )
            (uncertain if rec.uncertain else confident).append(record)
        for half in sorted(self.indirect):
            if half in self.direct or self.indirect[half].detached:
                continue
            rec = self.indirect[half]
            source = self.direct.get(rec.source)
            source_uncertain = source.uncertain if source is not None else False
            record = OracleRecord(
                address=half[0],
                forward=half[1],
                local_as=rec.local_as,
                remote_as=rec.remote_as,
                kind="indirect",
                uncertain=source_uncertain,
            )
            (uncertain if source_uncertain else confident).append(record)
        return confident, uncertain

    def run(self) -> OracleResult:
        """Alg 1: alternate add and remove steps until the state
        repeats, then apply the stub heuristic once."""
        self.refresh_visible()
        seen = {self.state_snapshot()}
        converged = False
        while self.iteration < self.config.max_iterations:
            self.iteration += 1
            self.pass_number = 0
            self.add_step()
            if self.config.enable_remove_step:
                self.remove_step()
            snapshot = self.state_snapshot()
            if snapshot in seen:
                converged = True
                break
            seen.add(snapshot)
        if self.config.enable_stub_heuristic:
            self.pass_number = 0
            self.stub_step()
        confident, uncertain = self.collect()
        return OracleResult(
            confident=confident,
            uncertain=uncertain,
            iterations=self.iteration,
            converged=converged,
            journal=self.journal,
            final_visible=dict(self.visible),
        )


def oracle_run(graph, ip2as, org, rel, config: Optional[OracleConfig] = None) -> OracleResult:
    """Run the reference algorithm over one input world.

    *graph* is an interface graph exposing ``forward`` / ``backward``
    neighbor tables, ``neighbors(address, direction)``,
    ``n_backward(address)``, and ``other_side(address)``; *ip2as*
    exposes ``asn(address)`` and ``is_ixp(address)``; *org* exposes
    ``canonical(asn)``; *rel* exposes ``is_stub(asn, org)`` and
    ``knows(asn)``.  Duck typing keeps this module import-independent
    of the production engine.
    """
    return _OracleRun(graph, ip2as, org, rel, config or OracleConfig()).run()
