"""Evidence-based confidence scores for inferences (extension).

MAP-IT outputs a binary confident/uncertain split; operators triaging
inferred borders benefit from a finer ranking.  Each inference is
scored from the evidence the algorithm itself used:

* **support** — the neighbor-set size behind the inference (the paper's
  4.68.110.186 anecdote had |N| = 141; a two-member set is the floor);
* **dominance** — the fraction of the neighbor set the connected AS
  accounts for under the converged mappings;
* **corroboration** — whether the link's other side independently
  carries a direct inference agreeing on the AS pair.

The composite score is the product of the three component scores, in
``[0, 1]``; indirect inferences inherit their source's evidence, and
stub-heuristic inferences are scored from their single-neighbor
evidence (support floor), which correctly ranks them below
well-corroborated core links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.mapit import MapIt
from repro.core.results import INDIRECT, LinkInference
from repro.graph.halves import Half

#: support saturates here: bigger neighbor sets add no further trust
_SUPPORT_CEILING = 8


@dataclass(frozen=True)
class Confidence:
    """Component and composite confidence for one inference."""

    support: int
    dominance: float
    corroborated: bool

    @property
    def score(self) -> float:
        support_score = min(self.support, _SUPPORT_CEILING) / _SUPPORT_CEILING
        corroboration_score = 1.0 if self.corroborated else 0.6
        return support_score * self.dominance * corroboration_score


def _evidence_half(mapit: MapIt, inference: LinkInference) -> Half:
    """The half whose neighbor set carried the evidence."""
    if inference.kind == INDIRECT and inference.other_side is not None:
        return (inference.other_side, not inference.forward)
    return (inference.address, inference.forward)


def confidence_for(mapit: MapIt, inference: LinkInference) -> Confidence:
    """Score one inference from the run's converged state."""
    engine = mapit.engine
    half = _evidence_half(mapit, inference)
    neighbors = engine.graph.neighbors(half[0], half[1])
    support = len(neighbors)
    tally = engine.dominance(half, engine.canonical(inference.remote_as))
    dominance = tally.count / tally.total if tally.total else 0.0
    partner = engine.other_side_half(half)
    corroborated = False
    if partner is not None:
        direct = engine.state.direct.get(partner)
        if direct is not None and engine.canonical(
            direct.remote_as
        ) != engine.canonical(inference.remote_as):
            corroborated = False
        elif direct is not None:
            corroborated = True
    return Confidence(support=support, dominance=dominance, corroborated=corroborated)


def rank_inferences(
    mapit: MapIt, inferences: List[LinkInference]
) -> List[Tuple[LinkInference, Confidence]]:
    """Inferences with confidence, best first (deterministic ties)."""
    scored = [
        (inference, confidence_for(mapit, inference)) for inference in inferences
    ]
    scored.sort(key=lambda pair: (-pair[1].score, pair[0].address, pair[0].forward))
    return scored
