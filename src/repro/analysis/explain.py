"""Per-interface inference explanations.

Given a completed :class:`repro.core.mapit.MapIt` run, explain one
interface address the way section 3.1 walks through 109.105.98.10:
show both neighbor sets with each member's original and final
mappings, the plurality verdict per half, any inference the interface
carries, and its point-to-point other side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.mapit import MapIt
from repro.graph.halves import BACKWARD, FORWARD, half_str
from repro.net.ipv4 import format_address


@dataclass
class NeighborView:
    """One neighbor-set member with its mappings."""

    address: int
    original_as: int
    current_as: int

    def __str__(self) -> str:
        if self.original_as == self.current_as:
            return f"{format_address(self.address)} [AS{self.original_as}]"
        return (
            f"{format_address(self.address)} "
            f"[AS{self.original_as} -> AS{self.current_as}]"
        )


@dataclass
class HalfView:
    """One interface half: neighbors, verdict, inference."""

    direction: str
    neighbors: List[NeighborView] = field(default_factory=list)
    plurality_as: Optional[int] = None
    plurality_count: int = 0
    inference: Optional[str] = None

    @property
    def total(self) -> int:
        return len(self.neighbors)


@dataclass
class Explanation:
    """Everything known about one interface address."""

    address: int
    original_as: int
    other_side: Optional[int]
    forward: HalfView = field(default_factory=lambda: HalfView("forward"))
    backward: HalfView = field(default_factory=lambda: HalfView("backward"))

    def render(self) -> str:
        """Multi-line human-readable explanation."""
        lines = [
            f"interface {format_address(self.address)} "
            f"(announced by AS{self.original_as})"
        ]
        if self.other_side is not None:
            lines.append(
                f"  point-to-point other side: {format_address(self.other_side)}"
            )
        for view in (self.forward, self.backward):
            lines.append(f"  {view.direction} neighbors ({view.total}):")
            for neighbor in view.neighbors:
                lines.append(f"    {neighbor}")
            if view.plurality_as is not None:
                lines.append(
                    f"    plurality: AS{view.plurality_as} "
                    f"({view.plurality_count}/{view.total})"
                )
            elif view.total:
                lines.append("    plurality: none (tie or unannounced)")
            if view.inference:
                lines.append(f"    inference: {view.inference}")
        return "\n".join(lines)


def explain_interface(mapit: MapIt, address: int) -> Explanation:
    """Build the explanation for *address* from a finished run."""
    engine = mapit.engine
    explanation = Explanation(
        address=address,
        original_as=engine.original_asn(address),
        other_side=engine.graph.other_side(address),
    )
    for direction, view in (
        (FORWARD, explanation.forward),
        (BACKWARD, explanation.backward),
    ):
        half = (address, direction)
        neighbor_direction = not direction
        for neighbor in sorted(engine.graph.neighbors(address, direction)):
            neighbor_half = (neighbor, neighbor_direction)
            view.neighbors.append(
                NeighborView(
                    address=neighbor,
                    original_as=engine.original_asn(neighbor),
                    current_as=engine.half_asn(neighbor_half),
                )
            )
        plurality = engine.plurality(half)
        if plurality is not None:
            view.plurality_as = plurality.member_as
            view.plurality_count = plurality.count
        direct = engine.state.direct.get(half)
        indirect = engine.state.indirect.get(half)
        if direct is not None:
            kind = "stub" if direct.via_stub else "direct"
            suffix = " (uncertain)" if direct.uncertain else ""
            view.inference = (
                f"{kind}: AS{direct.local_as} <-> AS{direct.remote_as}{suffix}"
            )
        elif indirect is not None and not indirect.detached:
            view.inference = (
                f"indirect via {half_str(indirect.source)}: "
                f"AS{indirect.local_as} <-> AS{indirect.remote_as}"
            )
    return explanation
