"""AS-level link graphs from MAP-IT inferences.

MAP-IT's per-interface inferences imply an AS-level adjacency graph.
This module materializes it, annotates each AS link with its supporting
interfaces and relationship type, and compares it against a BGP-derived
relationship dataset — the traceroute-vs-BGP completeness question of
Chen et al. that the paper discusses as related work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.results import LinkInference, MapItResult
from repro.org.as2org import AS2Org
from repro.rel.relationships import LinkType, RelationshipDataset

Pair = Tuple[int, int]


@dataclass
class ASLink:
    """One AS-level adjacency with its supporting evidence."""

    pair: Pair
    interfaces: Set[int] = field(default_factory=set)
    kinds: Set[str] = field(default_factory=set)
    link_type: Optional[LinkType] = None

    @property
    def support(self) -> int:
        """Number of distinct interfaces evidencing this link."""
        return len(self.interfaces)


class ASLinkGraph:
    """The AS graph implied by a set of link inferences."""

    def __init__(self) -> None:
        self._links: Dict[Pair, ASLink] = {}
        self._adjacency: Dict[int, Set[int]] = {}

    @classmethod
    def from_inferences(
        cls,
        inferences: Iterable[LinkInference],
        relationships: Optional[RelationshipDataset] = None,
        org: Optional[AS2Org] = None,
    ) -> "ASLinkGraph":
        graph = cls()
        for inference in inferences:
            pair = inference.pair()
            link = graph._links.get(pair)
            if link is None:
                link = ASLink(pair=pair)
                graph._links[pair] = link
                graph._adjacency.setdefault(pair[0], set()).add(pair[1])
                graph._adjacency.setdefault(pair[1], set()).add(pair[0])
            link.interfaces.add(inference.address)
            link.kinds.add(inference.kind)
        if relationships is not None:
            for link in graph._links.values():
                link.link_type = relationships.classify_link(
                    link.pair[0], link.pair[1], org
                )
        return graph

    @classmethod
    def from_result(
        cls,
        result: MapItResult,
        relationships: Optional[RelationshipDataset] = None,
        org: Optional[AS2Org] = None,
    ) -> "ASLinkGraph":
        return cls.from_inferences(result.inferences, relationships, org)

    # -- queries ---------------------------------------------------------

    def links(self) -> List[ASLink]:
        return [self._links[pair] for pair in sorted(self._links)]

    def link(self, a: int, b: int) -> Optional[ASLink]:
        return self._links.get((min(a, b), max(a, b)))

    def neighbors(self, asn: int) -> Set[int]:
        return set(self._adjacency.get(asn, ()))

    def degree(self, asn: int) -> int:
        return len(self._adjacency.get(asn, ()))

    def ases(self) -> Set[int]:
        return set(self._adjacency)

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, pair: Pair) -> bool:
        return (min(pair), max(pair)) in self._links

    def top_by_degree(self, count: int = 10) -> List[Tuple[int, int]]:
        """The best-connected ASes: ``(asn, degree)`` pairs."""
        ranked = sorted(
            self._adjacency.items(), key=lambda item: (-len(item[1]), item[0])
        )
        return [(asn, len(neighbors)) for asn, neighbors in ranked[:count]]

    def to_dot(self, names: Optional[Dict[int, str]] = None) -> str:
        """Render the AS graph in Graphviz DOT.

        Edge thickness scales with interface support; transit links
        are solid, peerings dashed, unclassified links dotted.
        """
        lines = ["graph aslinks {", "  node [shape=ellipse];"]
        names = names or {}
        for asn in sorted(self.ases()):
            label = names.get(asn, f"AS{asn}")
            lines.append(f'  {asn} [label="{label}"];')
        for link in self.links():
            if link.link_type is None:
                style = "dotted"
            elif link.link_type.value == "Peer":
                style = "dashed"
            else:
                style = "solid"
            width = min(1 + link.support // 2, 5)
            lines.append(
                f"  {link.pair[0]} -- {link.pair[1]} "
                f'[style={style}, penwidth={width}, label="{link.support}"];'
            )
        lines.append("}")
        return "\n".join(lines)


@dataclass
class LinkComparison:
    """Traceroute-inferred vs BGP-derived AS adjacencies."""

    in_both: Set[Pair] = field(default_factory=set)
    only_traceroute: Set[Pair] = field(default_factory=set)
    only_bgp: Set[Pair] = field(default_factory=set)

    @property
    def bgp_coverage(self) -> float:
        """Fraction of inferred links confirmed by BGP-derived data."""
        total = len(self.in_both) + len(self.only_traceroute)
        return len(self.in_both) / total if total else 1.0

    def summary(self) -> Dict[str, float]:
        return {
            "in_both": len(self.in_both),
            "only_traceroute": len(self.only_traceroute),
            "only_bgp": len(self.only_bgp),
            "bgp_coverage": round(self.bgp_coverage, 3),
        }


def compare_with_relationships(
    graph: ASLinkGraph, relationships: RelationshipDataset
) -> LinkComparison:
    """Compare the inferred AS graph with BGP-derived adjacencies.

    BGP-derived adjacencies are every provider/customer or peer pair
    in the relationship dataset.  Links seen only in traceroute are
    either BGP-invisible (backup links, selective announcement) or
    inference errors; links only in BGP were simply not traversed.
    """
    bgp_pairs: Set[Pair] = set()
    for asn in relationships.all_ases():
        for customer in relationships.customers(asn):
            bgp_pairs.add((min(asn, customer), max(asn, customer)))
        for peer in relationships.peers(asn):
            bgp_pairs.add((min(asn, peer), max(asn, peer)))
    inferred = {link.pair for link in graph.links()}
    return LinkComparison(
        in_both=inferred & bgp_pairs,
        only_traceroute=inferred - bgp_pairs,
        only_bgp=bgp_pairs - inferred,
    )
