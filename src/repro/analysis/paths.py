"""MAP-IT-corrected AS-level traceroute paths.

The paper's opening motivation (after Mao et al.): traceroute-derived
AS paths are wrong exactly at AS boundaries, because border interfaces
are announced by the neighbor.  MAP-IT's converged per-half mappings
fix this: a *forward half*'s mapping is the AS of the router holding
the interface, so mapping each hop through its forward half yields the
sequence of router-owning ASes — the true AS-level path.

:func:`as_path` converts one trace; :func:`path_accuracy` measures the
hop-level improvement over raw BGP origin mapping against ground truth
(simulator runs only, where router ownership is known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.mapit import MapIt
from repro.graph.halves import FORWARD
from repro.traceroute.model import Trace


def as_path(mapit: MapIt, trace: Trace, collapse: bool = True) -> List[int]:
    """The corrected AS-level path of *trace*.

    Hops map through their forward-half mapping (router-owner
    semantics); unresponsive and unmappable hops are skipped.  With
    *collapse* (default), consecutive duplicates merge, giving the AS
    sequence rather than per-hop labels.
    """
    engine = mapit.engine
    path: List[int] = []
    for address in trace.addresses():
        asn = engine.half_asn((address, FORWARD))
        if asn <= 0:
            continue
        if collapse and path and path[-1] == asn:
            continue
        path.append(asn)
    return path


def raw_as_path(mapit: MapIt, trace: Trace, collapse: bool = True) -> List[int]:
    """The naive path: raw BGP origins, no MAP-IT corrections."""
    engine = mapit.engine
    path: List[int] = []
    for address in trace.addresses():
        asn = engine.original_asn(address)
        if asn <= 0:
            continue
        if collapse and path and path[-1] == asn:
            continue
        path.append(asn)
    return path


@dataclass
class PathAccuracy:
    """Hop-level AS attribution accuracy, corrected vs raw."""

    hops: int = 0
    raw_correct: int = 0
    corrected_correct: int = 0

    @property
    def raw_accuracy(self) -> float:
        return self.raw_correct / self.hops if self.hops else 1.0

    @property
    def corrected_accuracy(self) -> float:
        return self.corrected_correct / self.hops if self.hops else 1.0

    def summary(self) -> Dict[str, float]:
        return {
            "hops": self.hops,
            "raw_accuracy": round(self.raw_accuracy, 4),
            "corrected_accuracy": round(self.corrected_accuracy, 4),
            "improvement": round(self.corrected_accuracy - self.raw_accuracy, 4),
        }


def path_accuracy(
    mapit: MapIt,
    traces: Iterable[Trace],
    router_as: Dict[int, int],
) -> PathAccuracy:
    """Score per-hop AS attribution against *router_as* ground truth.

    Only hops whose true router owner is known (interface addresses,
    not destination hosts) are scored.
    """
    engine = mapit.engine
    accuracy = PathAccuracy()
    for trace in traces:
        for address in trace.addresses():
            truth = router_as.get(address)
            if truth is None:
                continue
            accuracy.hops += 1
            if engine.original_asn(address) == truth:
                accuracy.raw_correct += 1
            if engine.half_asn((address, FORWARD)) == truth:
                accuracy.corrected_correct += 1
    return accuracy
