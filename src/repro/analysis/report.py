"""Human-readable run summaries."""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from repro.analysis.asgraph import ASLinkGraph
from repro.core.results import MapItResult
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset


def run_report(
    result: MapItResult,
    relationships: Optional[RelationshipDataset] = None,
    org: Optional[AS2Org] = None,
    top: int = 5,
) -> str:
    """A text report summarizing one MAP-IT run."""
    lines: List[str] = []
    summary = result.summary()
    lines.append("MAP-IT run report")
    lines.append("=" * 17)
    lines.append(
        f"{summary['inferences']} high-confidence inferences on "
        f"{summary['interfaces']} interfaces; {summary['uncertain']} uncertain; "
        f"converged after {summary['iterations']} iterations"
    )

    kinds = Counter(inference.kind for inference in result.inferences)
    lines.append(
        "by kind: "
        + ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
    )

    graph = ASLinkGraph.from_result(result, relationships, org)
    lines.append(f"{len(graph)} AS-level links across {len(graph.ases())} ASes")
    if relationships is not None:
        types = Counter(
            link.link_type.value for link in graph.links() if link.link_type
        )
        lines.append(
            "by relationship: "
            + ", ".join(f"{name}={count}" for name, count in sorted(types.items()))
        )

    lines.append(f"top {top} ASes by inferred link degree:")
    for asn, degree in graph.top_by_degree(top):
        lines.append(f"  AS{asn}: {degree} links")

    diagnostics = result.diagnostics
    if diagnostics:
        lines.append(
            "contradiction handling: "
            f"{diagnostics.get('dual_resolved', 0)} dual resolved, "
            f"{diagnostics.get('inverse_removed', 0)} inverse removed, "
            f"{diagnostics.get('divergent_other_sides', 0)} divergent other sides, "
            f"{diagnostics.get('uncertain_pairs', 0)} uncertain pairs"
        )
    return "\n".join(lines)
