"""Post-inference analysis utilities (extensions beyond the paper).

* :mod:`repro.analysis.explain` — per-interface explanations: why an
  inference was (or was not) made, with neighbor sets and mappings;
  the tool a network diagnostician would reach for first;
* :mod:`repro.analysis.asgraph` — AS-level link graphs derived from
  inferences, and comparison against BGP-derived adjacencies (the
  Chen et al. direction the paper cites as related/future work);
* :mod:`repro.analysis.paths` — MAP-IT-corrected AS-level traceroute
  paths (the section 1 motivation after Mao et al.);
* :mod:`repro.analysis.confidence` — evidence-based ranking of the
  inferences (support, dominance, other-side corroboration);
* :mod:`repro.analysis.report` — human-readable run summaries.
"""

from repro.analysis.asgraph import ASLinkGraph, compare_with_relationships
from repro.analysis.confidence import Confidence, confidence_for, rank_inferences
from repro.analysis.explain import Explanation, explain_interface
from repro.analysis.paths import as_path, path_accuracy, raw_as_path
from repro.analysis.report import run_report

__all__ = [
    "ASLinkGraph",
    "Confidence",
    "Explanation",
    "as_path",
    "compare_with_relationships",
    "confidence_for",
    "explain_interface",
    "path_accuracy",
    "rank_inferences",
    "raw_as_path",
    "run_report",
]
