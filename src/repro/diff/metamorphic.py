"""Metamorphic invariants of the production engine.

Three transformations of a world must leave the production engine's
final inferences unchanged:

* **trace-order permutation** — §4.4.5 promises order-independent
  results (passes read snapshots, candidate sets are sorted);
* **duplicate-trace injection** — neighbor sets are *sets*, so
  replaying the same paths adds no members and no inferences;
* **AS renumbering (order-preserving)** — absolute AS numbers carry no
  information; only identity, sibling grouping, and (for the ordinal
  tie-break) relative order matter, so relabeling must relabel the
  output and nothing else.

Unlike the differential harness these checks need no oracle: the
engine is compared against itself on transformed inputs, which catches
bug classes (hidden ordering dependence, tally accumulation across
duplicates, absolute-ASN comparisons) that oracle agreement alone
would miss if both implementations shared the assumption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MapItConfig, REMOVE_MAJORITY
from repro.diff.harness import Record, build_graph, core_records
from repro.diff.worlds import (
    World,
    duplicate_traces,
    permute_traces,
    renumber_ases,
)
from repro.obs.observer import NULL_OBS, Observability

Half = Tuple[int, bool]

#: names of the invariant checks, in run order
CHECKS = ("permutation", "duplication", "renumbering")


@dataclass
class MetamorphicFailure:
    """One invariant violation: the first half whose inference changed."""

    world: str
    check: str
    half: Half
    baseline: Optional[Record]
    transformed: Optional[Record]

    def summary(self) -> str:
        return (
            f"world {self.world}: {self.check} changed half {self.half}: "
            f"{self.baseline} -> {self.transformed}"
        )


@dataclass
class MetamorphicOutcome:
    """All invariant checks of one world."""

    world: str
    checks: int = 0
    failures: List[MetamorphicFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _engine_map(world: World, config: MapItConfig) -> Dict[Half, Record]:
    graph = build_graph(world)
    records, _ = core_records(graph, world, config)
    return records


def _diff_maps(
    world: str,
    check: str,
    baseline: Dict[Half, Record],
    transformed: Dict[Half, Record],
) -> List[MetamorphicFailure]:
    failures = []
    for half in sorted(set(baseline) | set(transformed)):
        if baseline.get(half) != transformed.get(half):
            failures.append(
                MetamorphicFailure(
                    world, check, half, baseline.get(half), transformed.get(half)
                )
            )
    return failures


def _relabel(records: Dict[Half, Record], mapping: Dict[int, int]) -> Dict[Half, Record]:
    """Apply an AS relabeling to an inference map (addresses fixed)."""
    relabeled: Dict[Half, Record] = {}
    for half, (local, remote, kind, uncertain) in records.items():
        relabeled[half] = (
            mapping.get(local, local),
            mapping.get(remote, remote),
            kind,
            uncertain,
        )
    return relabeled


def check_world(
    world: World,
    remove_rule: str = REMOVE_MAJORITY,
    seed: int = 0,
    obs: Observability = NULL_OBS,
) -> MetamorphicOutcome:
    """Run all three invariant checks against *world*."""
    config = MapItConfig(remove_rule=remove_rule)
    outcome = MetamorphicOutcome(world=world.name)
    with obs.span("diff/metamorphic"):
        baseline = _engine_map(world, config)

        rng = random.Random(seed)
        permuted = _engine_map(permute_traces(world, rng), config)
        outcome.checks += 1
        outcome.failures.extend(
            _diff_maps(world.name, "permutation", baseline, permuted)
        )

        rng = random.Random(seed + 1)
        duplicated = _engine_map(duplicate_traces(world, rng), config)
        outcome.checks += 1
        outcome.failures.extend(
            _diff_maps(world.name, "duplication", baseline, duplicated)
        )

        rng = random.Random(seed + 2)
        renumbered_world, mapping = renumber_ases(world, rng)
        renumbered = _engine_map(renumbered_world, config)
        outcome.checks += 1
        outcome.failures.extend(
            _diff_maps(
                world.name, "renumbering", _relabel(baseline, mapping), renumbered
            )
        )
    if obs.enabled:
        obs.inc("diff.metamorphic.checks", outcome.checks)
        obs.inc("diff.metamorphic.failures", len(outcome.failures))
    return outcome
