"""Delta-debugging shrinker for diverging worlds.

When the harness finds a world on which oracle and production engine
disagree, this module minimizes it while the disagreement persists —
classic ddmin over three granularities, coarse to fine:

1. **traces** — drop whole traces (ddmin with increasing chunk
   granularity);
2. **routers** — excise all of one router's interface addresses from
   every trace (using the router map the simulator exported);
3. **ASes** — excise all addresses of one ground-truth AS, and prune
   the AS from the raw datasets.

Each accepted step keeps the world diverging, so the end state is a
locally-minimal reproduction; :func:`write_regression` persists it as
a normal dataset bundle under ``tests/fixtures/regressions/`` where CI
replays it forever (docs/DIFFERENTIAL_TESTING.md).

Hop excision drops hops rather than splitting traces; the two hops
around an excised router become adjacent, which can in principle
create new neighbor-set members.  That is fine for ddmin — the
predicate re-checks divergence after every candidate step and rejects
any that stop diverging — it only means minimality is local, like all
delta debugging.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.bgp.cymru import CymruTable
from repro.bgp.table import CollectorDump
from repro.diff.harness import world_diverges
from repro.diff.worlds import World
from repro.io.atomic import atomic_write_json
from repro.ixp.dataset import IXPDataset
from repro.obs.observer import NULL_OBS, Observability
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Trace

Predicate = Callable[[World], bool]


@dataclass
class ShrinkReport:
    """What the shrinker did to one diverging world."""

    world: str
    original_traces: int
    final_traces: int = 0
    routers_removed: int = 0
    ases_removed: int = 0
    tests_run: int = 0
    stages: List[str] = field(default_factory=list)


def divergence_predicate(remove_rule: str) -> Predicate:
    """The standard predicate: the world still diverges under *rule*."""

    def predicate(world: World) -> bool:
        return world_diverges(world, remove_rule)

    return predicate


def _ddmin_traces(
    world: World, predicate: Predicate, report: ShrinkReport
) -> World:
    """Zeller-style ddmin over the trace list."""
    traces: List[Trace] = list(world.traces)
    chunks = 2
    while len(traces) >= 2:
        size = max(1, len(traces) // chunks)
        reduced = False
        start = 0
        while start < len(traces):
            candidate_traces = traces[:start] + traces[start + size:]
            if not candidate_traces:
                start += size
                continue
            candidate = world.replaced(traces=candidate_traces)
            report.tests_run += 1
            if predicate(candidate):
                traces = candidate_traces
                chunks = max(2, chunks - 1)
                reduced = True
            else:
                start += size
        if not reduced:
            if size <= 1:
                break
            chunks = min(len(traces), chunks * 2)
    return world.replaced(traces=traces)


def _excise_addresses(traces: Sequence[Trace], doomed: Set[int]) -> List[Trace]:
    """Drop every hop whose address is in *doomed*; traces left with
    fewer than two hops carry no adjacency and are dropped whole."""
    kept: List[Trace] = []
    for trace in traces:
        hops = tuple(hop for hop in trace.hops if hop.address not in doomed)
        if len(hops) == len(trace.hops):
            kept.append(trace)
        elif len(hops) >= 2:
            kept.append(trace.replace_hops(hops))
    return kept


def _shrink_routers(
    world: World, predicate: Predicate, report: ShrinkReport
) -> World:
    """Try excising each simulator router's addresses, one at a time."""
    if not world.router_addresses:
        return world
    current = world
    used = {hop.address for trace in current.traces for hop in trace.hops}
    for router in sorted(current.router_addresses):
        addresses = set(current.router_addresses[router])
        if not addresses & used:
            continue
        candidate = current.replaced(
            traces=_excise_addresses(current.traces, addresses),
            router_addresses={
                key: value
                for key, value in current.router_addresses.items()
                if key != router
            },
        )
        if not candidate.traces:
            continue
        report.tests_run += 1
        if predicate(candidate):
            current = candidate
            used = {hop.address for trace in current.traces for hop in trace.hops}
            report.routers_removed += 1
    return current


def _drop_as_from_datasets(world: World, asn: int) -> World:
    """Remove *asn* from every raw dataset (announcements it
    originates, its cymru rows, IXP records, sibling membership, and
    relationship edges)."""
    dumps = []
    for dump in world.collector_dumps:
        pruned = CollectorDump(name=dump.name, location=dump.location)
        for announcement in dump:
            if announcement.origin != asn:
                pruned.add(announcement)
        dumps.append(pruned)
    cymru = CymruTable()
    for prefix, origin in world.cymru.items():
        if origin != asn:
            cymru.add(prefix, origin)
    ixp = IXPDataset(record for record in world.ixp if record.asn != asn)
    as2org = AS2Org()
    for index, group in enumerate(world.as2org.groups()):
        remaining = sorted(member for member in group if member != asn)
        if len(remaining) >= 2:
            as2org.add_siblings(remaining, org_name=f"org-{index}")
    relationships = RelationshipDataset()
    for known in world.relationships.all_ases():
        if known == asn:
            continue
        for customer in world.relationships.customers(known):
            if customer != asn:
                relationships.add_p2c(known, customer)
        for peer in world.relationships.peers(known):
            if peer != asn and known < peer:
                relationships.add_p2p(known, peer)
    return world.replaced(
        collector_dumps=dumps,
        cymru=cymru,
        ixp=ixp,
        as2org=as2org,
        relationships=relationships,
        address_as={
            address: owner for address, owner in world.address_as.items() if owner != asn
        },
    )


def _shrink_ases(
    world: World, predicate: Predicate, report: ShrinkReport
) -> World:
    """Try excising each ground-truth AS entirely."""
    if not world.address_as:
        return world
    current = world
    for asn in sorted(set(world.address_as.values())):
        addresses = {
            address for address, owner in current.address_as.items() if owner == asn
        }
        if not addresses:
            continue
        candidate = _drop_as_from_datasets(
            current.replaced(traces=_excise_addresses(current.traces, addresses)), asn
        )
        if not candidate.traces:
            continue
        report.tests_run += 1
        if predicate(candidate):
            current = candidate
            report.ases_removed += 1
    return current


def shrink_world(
    world: World,
    predicate: Predicate,
    obs: Observability = NULL_OBS,
) -> Tuple[World, ShrinkReport]:
    """Minimize *world* while *predicate* (still-diverging) holds.

    The caller must ensure ``predicate(world)`` is True on entry.
    """
    report = ShrinkReport(world=world.name, original_traces=len(world.traces))
    with obs.span("diff/shrink"):
        current = _ddmin_traces(world, predicate, report)
        report.stages.append(f"traces: {report.original_traces} -> {len(current.traces)}")
        current = _shrink_routers(current, predicate, report)
        report.stages.append(f"routers: removed {report.routers_removed}")
        current = _shrink_ases(current, predicate, report)
        report.stages.append(f"ases: removed {report.ases_removed}")
        # One more trace pass: router/AS excision often strands traces.
        current = _ddmin_traces(current, predicate, report)
    report.final_traces = len(current.traces)
    report.stages.append(f"final traces: {report.final_traces}")
    if obs.enabled:
        obs.inc("diff.shrink.runs")
        obs.inc("diff.shrink.tests", report.tests_run)
        obs.gauge("diff.shrink.final_traces", report.final_traces)
    return current.replaced(name=f"{world.name}+shrunk"), report


def regression_name(world: World, remove_rule: str) -> str:
    """A stable directory name for a checked-in repro bundle."""
    base = world.name.replace("+", "-")
    return f"{base}-{remove_rule}"


def write_regression(
    world: World,
    remove_rule: str,
    directory: Union[str, Path],
    extra_manifest: Optional[Dict] = None,
) -> Path:
    """Persist a minimal diverging world under *directory* (typically
    ``tests/fixtures/regressions/``) for permanent replay."""
    root = Path(directory) / regression_name(world, remove_rule)
    world.save(root)
    manifest_path = root / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["diff"]["remove_rule"] = remove_rule
    if extra_manifest:
        manifest["diff"].update(extra_manifest)
    atomic_write_json(manifest_path, manifest)
    return root
