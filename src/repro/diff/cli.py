"""``python -m repro.diff`` — the differential sweep driver.

Sweeps seeded simulator worlds through oracle vs. production engine
(both §4.5 remove-rule readings by default), layers the metamorphic
invariant checks on the same worlds, replays checked-in regression
bundles, and — with ``--shrink`` — minimizes any diverging world and
writes it under ``tests/fixtures/regressions/``.

Exit status is 0 only when every comparison and every invariant held,
so CI can run it directly (the ``diff`` job in ci.yml does).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.config import REMOVE_ADD_RULE, REMOVE_MAJORITY
from repro.diff.harness import DEFAULT_RULES, compare_world
from repro.diff.metamorphic import check_world
from repro.diff.shrink import divergence_predicate, shrink_world, write_regression
from repro.diff.worlds import PRESETS, world_from_bundle, world_from_preset
from repro.obs.metrics import Metrics
from repro.obs.observer import NULL_OBS, Observability
from repro.obs.trace import Tracer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diff",
        description="differential + metamorphic testing of repro.core "
        "against the paper-literal oracle",
    )
    parser.add_argument(
        "--worlds", type=int, default=20, help="number of sweep worlds (default 20)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first world seed (default 0)"
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="small",
        help="scenario preset for sweep worlds (default small)",
    )
    parser.add_argument(
        "--rules",
        default="both",
        choices=(REMOVE_MAJORITY, REMOVE_ADD_RULE, "both"),
        help="remove-rule reading(s) to compare under (default both)",
    )
    parser.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic invariant checks",
    )
    parser.add_argument(
        "--replay",
        action="append",
        default=[],
        metavar="BUNDLE",
        help="also compare a saved world bundle (repeatable); "
        "regression bundles replay under their recorded remove rule",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="minimize any diverging world and write the repro bundle",
    )
    parser.add_argument(
        "--regressions-dir",
        default="tests/fixtures/regressions",
        help="where --shrink writes repro bundles "
        "(default tests/fixtures/regressions)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable summary on stdout"
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="write observability events (JSON lines)"
    )
    parser.add_argument(
        "--metrics", metavar="FILE", help="write diff.* metric counters (JSON)"
    )
    return parser


def _rules_for(choice: str) -> List[str]:
    if choice == "both":
        return list(DEFAULT_RULES)
    return [choice]


def _build_obs(args) -> Observability:
    """An observability handle for the parsed flags (NULL when unused).

    Matches the main CLI's determinism choice: traces are written
    without wall-clock timestamps.
    """
    if not (args.trace or args.metrics):
        return NULL_OBS
    tracer = Tracer.to_file(args.trace, timestamps=False) if args.trace else None
    metrics = Metrics() if args.metrics else None
    return Observability(tracer=tracer, metrics=metrics)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs = _build_obs(args)
    rules = _rules_for(args.rules)
    summary = {
        "worlds": 0,
        "comparisons": 0,
        "divergences": 0,
        "metamorphic_failures": 0,
        "replayed": 0,
        "shrunk": [],
    }
    failed = False

    def handle_divergence(world, rule, outcome) -> None:
        nonlocal failed
        failed = True
        print(outcome.report or f"world {world.name}: diverged", file=sys.stderr)
        if args.shrink:
            predicate = divergence_predicate(rule)
            shrunk, report = shrink_world(world, predicate, obs=obs)
            path = write_regression(
                shrunk,
                rule,
                args.regressions_dir,
                extra_manifest={"shrink": report.stages},
            )
            summary["shrunk"].append(str(path))
            print(
                f"  minimized {report.original_traces} -> {report.final_traces} "
                f"traces ({report.tests_run} predicate runs); wrote {path}",
                file=sys.stderr,
            )

    for index in range(args.worlds):
        world = world_from_preset(args.preset, args.seed + index)
        summary["worlds"] += 1
        for rule in rules:
            outcome = compare_world(world, rule, obs=obs)
            summary["comparisons"] += 1
            summary["divergences"] += len(outcome.divergences)
            if not outcome.ok:
                handle_divergence(world, rule, outcome)
        if not args.no_metamorphic:
            meta = check_world(world, rules[0], seed=args.seed + index, obs=obs)
            summary["metamorphic_failures"] += len(meta.failures)
            if not meta.ok:
                failed = True
                for failure in meta.failures[:3]:
                    print(failure.summary(), file=sys.stderr)

    for bundle in args.replay:
        world = world_from_bundle(bundle)
        summary["replayed"] += 1
        replay_rules = rules
        recorded = None
        try:
            manifest = json.loads((Path(bundle) / "manifest.json").read_text())
            recorded = manifest.get("diff", {}).get("remove_rule")
        except (OSError, ValueError, AttributeError):
            recorded = None  # no manifest: replay under the sweep rules
        if recorded in (REMOVE_MAJORITY, REMOVE_ADD_RULE):
            replay_rules = [recorded]
        for rule in replay_rules:
            outcome = compare_world(world, rule, obs=obs)
            summary["comparisons"] += 1
            summary["divergences"] += len(outcome.divergences)
            if not outcome.ok:
                handle_divergence(world, rule, outcome)

    if obs.enabled:
        obs.event(
            "diff.sweep.end",
            worlds=summary["worlds"],
            comparisons=summary["comparisons"],
            divergences=summary["divergences"],
            metamorphic_failures=summary["metamorphic_failures"],
        )
        if args.metrics and obs.metrics is not None:
            obs.metrics.write(args.metrics)
        obs.close()

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"{summary['worlds']} world(s) + {summary['replayed']} replay(s), "
            f"{summary['comparisons']} comparison(s): "
            f"{summary['divergences']} divergence(s), "
            f"{summary['metamorphic_failures']} metamorphic failure(s)"
        )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
