"""Differential and metamorphic testing of :mod:`repro.core`.

The harness (``python -m repro.diff``, docs/DIFFERENTIAL_TESTING.md)
sweeps seeded :mod:`repro.sim` worlds through both the production
engine and the paper-literal oracle (:mod:`repro.oracle`), diffs the
final inference sets half-by-half, checks metamorphic invariants
(trace-order permutation, duplicate injection, AS renumbering), and
delta-debugs any diverging world down to a minimal regression bundle
under ``tests/fixtures/regressions/``.
"""

from repro.diff.harness import (
    DEFAULT_RULES,
    Divergence,
    WorldOutcome,
    compare_world,
    world_diverges,
)
from repro.diff.metamorphic import MetamorphicOutcome, check_world
from repro.diff.shrink import (
    ShrinkReport,
    divergence_predicate,
    shrink_world,
    write_regression,
)
from repro.diff.worlds import (
    World,
    world_from_bundle,
    world_from_preset,
    world_from_scenario,
)

__all__ = [
    "DEFAULT_RULES",
    "Divergence",
    "MetamorphicOutcome",
    "ShrinkReport",
    "World",
    "WorldOutcome",
    "check_world",
    "compare_world",
    "divergence_predicate",
    "shrink_world",
    "world_diverges",
    "world_from_bundle",
    "world_from_preset",
    "world_from_scenario",
    "write_regression",
]
