"""Worlds: the unit of input the differential harness runs on.

A :class:`World` is a self-contained MAP-IT input — traces plus the
raw datasets the IP2AS stack is assembled from — in a mutable shape
the shrinker can carve up and the metamorphic checks can transform,
and that round-trips through the standard dataset-directory format
(:mod:`repro.io`) so a failing world can be checked in as a regression
bundle and replayed by ``python -m repro.diff --replay``.

Worlds come from three places: seeded :mod:`repro.sim` scenarios (the
sweep), saved bundles (replay), and transformations of other worlds
(metamorphic checks and shrinking).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder
from repro.bgp.origins import merge_collectors
from repro.bgp.table import Announcement, CollectorDump
from repro.io.atomic import atomic_write_json, atomic_write_lines
from repro.io.bundle import load_bundle
from repro.ixp.dataset import IXPDataset, IXPRecord
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.sim.presets import (
    dense_scenario,
    paper_scenario,
    small_scenario,
    tiny_scenario,
)
from repro.sim.scenario import Scenario
from repro.traceroute.model import Trace
from repro.traceroute.parse import traces_to_text_lines

#: preset name -> scenario factory, as accepted by ``--preset``
PRESETS = {
    "tiny": tiny_scenario,
    "small": small_scenario,
    "paper": paper_scenario,
    "dense": dense_scenario,
}


@dataclass
class World:
    """One differential-testing input: traces plus raw datasets.

    ``router_addresses`` (router key -> its interface addresses) and
    ``address_as`` (address -> ground-truth AS) are shrink metadata:
    they let the shrinker drop whole routers and whole ASes instead of
    only whole traces.  Both may be empty for replayed bundles that
    never recorded them.
    """

    name: str
    traces: List[Trace]
    collector_dumps: List[CollectorDump] = field(default_factory=list)
    cymru: CymruTable = field(default_factory=CymruTable)
    ixp: IXPDataset = field(default_factory=IXPDataset)
    as2org: AS2Org = field(default_factory=AS2Org)
    relationships: RelationshipDataset = field(default_factory=RelationshipDataset)
    router_addresses: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    address_as: Dict[int, int] = field(default_factory=dict)

    def ip2as(self) -> IP2AS:
        """Assemble the composite IP2AS mapper from the raw datasets,
        exactly the way :func:`repro.io.bundle.load_bundle` does."""
        builder = IP2ASBuilder()
        if self.collector_dumps:
            builder.add_bgp(merge_collectors(self.collector_dumps))
        builder.add_cymru(self.cymru)
        builder.set_ixp(self.ixp)
        return builder.build()

    def replaced(self, **changes) -> "World":
        """A shallow copy with *changes* applied (shrinker steps)."""
        return replace(self, **changes)

    # -- persistence ------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> Path:
        """Write this world as a loadable dataset directory.

        The layout matches :func:`repro.io.save.save_scenario`; shrink
        metadata rides along inside ``manifest.json`` under ``"diff"``
        so a replayed regression world can keep shrinking.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        checksums: Dict[str, str] = {}
        checksums["traces.txt"] = atomic_write_lines(
            root / "traces.txt", traces_to_text_lines(self.traces)
        )
        bgp_dir = root / "bgp"
        bgp_dir.mkdir(exist_ok=True)
        for dump in self.collector_dumps:
            checksums[f"bgp/{dump.name}.txt"] = atomic_write_lines(
                bgp_dir / f"{dump.name}.txt", dump.dump_lines()
            )
        checksums["cymru.txt"] = atomic_write_lines(
            root / "cymru.txt", self.cymru.dump_lines()
        )
        checksums["ixp.txt"] = atomic_write_lines(root / "ixp.txt", self.ixp.dump_lines())
        checksums["as2org.txt"] = atomic_write_lines(
            root / "as2org.txt", self.as2org.dump_lines()
        )
        checksums["relationships.txt"] = atomic_write_lines(
            root / "relationships.txt", self.relationships.dump_lines()
        )
        manifest = {
            "format": "mapit-dataset-v1",
            "traces": len(self.traces),
            "collectors": [dump.name for dump in self.collector_dumps],
            "checksums": {
                name: f"sha256:{value}" for name, value in sorted(checksums.items())
            },
            "diff": {
                "world": self.name,
                "router_addresses": {
                    str(router): sorted(addresses)
                    for router, addresses in sorted(self.router_addresses.items())
                },
                "address_as": {
                    str(address): asn for address, asn in sorted(self.address_as.items())
                },
            },
        }
        atomic_write_json(root / "manifest.json", manifest)
        return root


def world_from_scenario(scenario: Scenario, name: str) -> World:
    """Wrap a built :class:`~repro.sim.scenario.Scenario` as a world,
    capturing the router/AS structure the shrinker needs."""
    return World(
        name=name,
        traces=list(scenario.traces),
        collector_dumps=list(scenario.collector_dumps),
        cymru=scenario.cymru,
        ixp=scenario.ixp_dataset,
        as2org=scenario.as2org,
        relationships=scenario.relationships,
        router_addresses=scenario.router_addresses(),
        address_as=dict(scenario.ground_truth.router_as),
    )


def world_from_preset(preset: str, seed: int) -> World:
    """Build the *seed*-th world of a named preset sweep."""
    try:
        factory = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r} (choose from {sorted(PRESETS)})"
        ) from None
    return world_from_scenario(factory(seed=seed), name=f"{preset}-seed{seed}")


def world_from_bundle(directory: Union[str, Path]) -> World:
    """Load a saved world (e.g. a checked-in regression bundle).

    Raw datasets are re-read from the individual files rather than
    through the composite mapper so the world stays transformable;
    shrink metadata is recovered from the manifest when present.
    """
    root = Path(directory)
    bundle = load_bundle(root)
    dumps: List[CollectorDump] = []
    bgp_dir = root / "bgp"
    if bgp_dir.is_dir():
        for path in sorted(bgp_dir.glob("*.txt")):
            with open(path) as handle:
                dumps.append(CollectorDump.from_lines(handle.read().splitlines()))
    cymru = CymruTable()
    cymru_path = root / "cymru.txt"
    if cymru_path.exists():
        with open(cymru_path) as handle:
            cymru = CymruTable.from_lines(handle.read().splitlines())
    ixp = IXPDataset()
    ixp_path = root / "ixp.txt"
    if ixp_path.exists():
        with open(ixp_path) as handle:
            ixp = IXPDataset.from_lines(handle.read().splitlines())
    diff_meta = bundle.manifest.get("diff", {}) if bundle.manifest else {}
    router_addresses = {
        int(router): tuple(addresses)
        for router, addresses in diff_meta.get("router_addresses", {}).items()
    }
    address_as = {
        int(address): asn for address, asn in diff_meta.get("address_as", {}).items()
    }
    return World(
        name=diff_meta.get("world", root.name),
        traces=list(bundle.traces),
        collector_dumps=dumps,
        cymru=cymru,
        ixp=ixp,
        as2org=bundle.as2org,
        relationships=bundle.relationships,
        router_addresses=router_addresses,
        address_as=address_as,
    )


# -- metamorphic transformations ------------------------------------------


def permute_traces(world: World, rng: random.Random) -> World:
    """Shuffle trace order (§4.4.5: results must not depend on it)."""
    traces = list(world.traces)
    rng.shuffle(traces)
    return world.replaced(name=f"{world.name}+permuted", traces=traces)


def duplicate_traces(world: World, rng: random.Random, fraction: float = 0.3) -> World:
    """Re-append a random sample of traces (duplicate observations of
    the same paths add no neighbor-set members, so inferences must not
    change)."""
    traces = list(world.traces)
    count = max(1, int(len(traces) * fraction))
    traces.extend(rng.sample(list(world.traces), min(count, len(traces))))
    return world.replaced(name=f"{world.name}+duplicated", traces=traces)


def renumber_ases(world: World, rng: random.Random) -> Tuple[World, Dict[int, int]]:
    """Relabel every AS number, order-preserving; returns the mapping.

    Inference output must be invariant modulo the relabeling.  The
    relabeling keeps relative ASN order (each AS moves up by a random
    cumulative offset) because the documented sibling-member tie-break
    is ordinal — "lowest ASN wins" — so an order-*reversing* relabel
    could legitimately flip tie decisions.  Absolute values, however,
    must never matter, which is exactly what this checks.
    """
    asns = set(world.address_as.values())
    asns.update(world.relationships.all_ases())
    for group in world.as2org.groups():
        asns.update(group)
    for dump in world.collector_dumps:
        for announcement in dump:
            asns.update(announcement.as_path)
    for _, origin in world.cymru.items():
        asns.add(origin)
    for record in world.ixp:
        if record.asn is not None:
            asns.add(record.asn)
    mapping: Dict[int, int] = {}
    next_value = 0
    for asn in sorted(asn for asn in asns if asn > 0):
        next_value += rng.randint(1, 1000)
        mapping[asn] = next_value
    for asn in asns:
        if asn <= 0:
            mapping[asn] = asn  # sentinels are not AS numbers

    def m(asn: int) -> int:
        return mapping.get(asn, asn)

    dumps = []
    for dump in world.collector_dumps:
        renumbered = CollectorDump(name=dump.name, location=dump.location)
        for announcement in dump:
            renumbered.add(
                Announcement(
                    prefix=announcement.prefix,
                    as_path=tuple(m(asn) for asn in announcement.as_path),
                )
            )
        dumps.append(renumbered)
    cymru = CymruTable()
    for prefix, origin in world.cymru.items():
        cymru.add(prefix, m(origin))
    ixp = IXPDataset(
        IXPRecord(prefix=record.prefix, asn=m(record.asn), name=record.name)
        for record in world.ixp
    )
    as2org = AS2Org()
    for index, group in enumerate(world.as2org.groups()):
        as2org.add_siblings(sorted(m(asn) for asn in group), org_name=f"org-{index}")
    relationships = RelationshipDataset()
    for asn in world.relationships.all_ases():
        for customer in world.relationships.customers(asn):
            relationships.add_p2c(m(asn), m(customer))
        for peer in world.relationships.peers(asn):
            if asn < peer:
                relationships.add_p2p(m(asn), m(peer))
    renumbered_world = world.replaced(
        name=f"{world.name}+renumbered",
        collector_dumps=dumps,
        cymru=cymru,
        ixp=ixp,
        as2org=as2org,
        relationships=relationships,
        address_as={address: m(asn) for address, asn in world.address_as.items()},
    )
    return renumbered_world, mapping


def world_sweep(preset: str, worlds: int, seed: int) -> List[World]:
    """The deterministic world list of one sweep: seeds ``seed`` to
    ``seed + worlds - 1`` of *preset*."""
    return [world_from_preset(preset, seed + index) for index in range(worlds)]


def load_worlds(paths: List[Union[str, Path]]) -> List[World]:
    """Load a list of saved world bundles (``--replay``)."""
    return [world_from_bundle(path) for path in paths]
