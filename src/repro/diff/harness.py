"""The differential harness: oracle vs. production engine, half by half.

For each world the harness runs the paper-literal oracle
(:mod:`repro.oracle`) and the production engine
(:mod:`repro.core.mapit`) on identical inputs and compares the final
inference sets keyed by interface half.  Any disagreement — a half
inferred by only one side, or inferred with a different AS pair, kind,
or uncertainty — is a :class:`Divergence`, and the first one per world
is rendered as a readable report: the half, which side said what, both
sides' final neighbor-set tallies, and the oracle's journal of every
rule that touched the half (iteration, pass, rule).

Emits ``diff.*`` metrics (docs/OBSERVABILITY.md) when given an
:class:`~repro.obs.observer.Observability`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import (
    MapItConfig,
    REMOVE_ADD_RULE,
    REMOVE_MAJORITY,
)
from repro.core.mapit import MapIt
from repro.diff.worlds import World
from repro.graph.neighbors import InterfaceGraph, build_interface_graph
from repro.obs.observer import NULL_OBS, Observability
from repro.oracle import OracleConfig, OracleResult, oracle_run
from repro.traceroute.sanitize import sanitize_traces

#: the remove-rule readings a sweep exercises by default (§4.5 prose
#: vs. Alg 3 literal)
DEFAULT_RULES = (REMOVE_MAJORITY, REMOVE_ADD_RULE)

#: a comparable inference record: (local_as, remote_as, kind, uncertain)
Record = Tuple[int, int, str, bool]
Half = Tuple[int, bool]


def oracle_config_for(config: MapItConfig) -> OracleConfig:
    """Map the production config onto the oracle's own knobs.

    Field-by-field on purpose: the oracle must not import
    :class:`MapItConfig`, and a new production knob should fail loudly
    here rather than silently diverge.
    """
    return OracleConfig(
        f=config.f,
        min_neighbors=config.min_neighbors,
        remove_rule=config.remove_rule,
        max_iterations=config.max_iterations,
        enable_stub_heuristic=config.enable_stub_heuristic,
        fix_dual_inferences=config.fix_dual_inferences,
        fix_divergent_other_sides=config.fix_divergent_other_sides,
        fix_inverse_inferences=config.fix_inverse_inferences,
        enable_remove_step=config.enable_remove_step,
    )


@dataclass
class Divergence:
    """One half on which the two implementations disagree."""

    half: Half
    core: Optional[Record]
    oracle: Optional[Record]

    def summary(self) -> str:
        def render(record: Optional[Record]) -> str:
            if record is None:
                return "(no inference)"
            local, remote, kind, uncertain = record
            flag = " uncertain" if uncertain else ""
            return f"AS{local} <-> AS{remote} [{kind}{flag}]"

        address, forward = self.half
        direction = "forward" if forward else "backward"
        return (
            f"half ({address}, {direction}): "
            f"core={render(self.core)} oracle={render(self.oracle)}"
        )


@dataclass
class WorldOutcome:
    """Result of one world under one remove rule."""

    world: str
    remove_rule: str
    divergences: List[Divergence] = field(default_factory=list)
    core_inferences: int = 0
    oracle_inferences: int = 0
    report: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences


def core_records(
    graph: InterfaceGraph, world: World, config: MapItConfig
) -> Tuple[Dict[Half, Record], MapIt]:
    """Run the production engine; returns its record map and the run
    object (kept alive so the divergence report can re-tally halves)."""
    mapit = MapIt(graph, world.ip2as(), world.as2org, world.relationships, config)
    result = mapit.run()
    records: Dict[Half, Record] = {}
    for inference in result.inferences + result.uncertain:
        records[(inference.address, inference.forward)] = (
            inference.local_as,
            inference.remote_as,
            inference.kind,
            inference.uncertain,
        )
    return records, mapit


def oracle_records(
    graph: InterfaceGraph, world: World, config: OracleConfig
) -> Tuple[Dict[Half, Record], OracleResult]:
    """Run the reference implementation; returns its record map and the
    full result (journal included)."""
    result = oracle_run(graph, world.ip2as(), world.as2org, world.relationships, config)
    records: Dict[Half, Record] = {}
    for record in result.confident + result.uncertain:
        records[record.half] = (
            record.local_as,
            record.remote_as,
            record.kind,
            record.uncertain,
        )
    return records, result


def build_graph(world: World) -> InterfaceGraph:
    """Sanitize (§4.1) and build the interface graph (§4.2–4.3) once;
    both implementations consume the same graph object."""
    report = sanitize_traces(world.traces)
    return build_interface_graph(report.traces)


def _oracle_tally(
    graph: InterfaceGraph,
    world: World,
    half: Half,
    visible: Dict[Half, int],
) -> Tuple[Dict[int, int], int]:
    """Re-tally *half*'s neighbor set under the oracle's final visible
    mappings (for the report only; the oracle itself stays untouched)."""
    ip2as = world.ip2as()
    org = world.as2org
    neighbor_direction = not half[1]
    groups: Dict[int, int] = {}
    total = 0
    for neighbor in sorted(graph.neighbors(half[0], half[1])):
        asn = visible.get((neighbor, neighbor_direction), ip2as.asn(neighbor))
        group = asn if asn <= 0 else org.canonical(asn)
        groups[group] = groups.get(group, 0) + 1
        total += 1
    return groups, total


def _tally_text(tally: Dict[int, int]) -> str:
    if not tally:
        return "(empty neighbor set)"
    parts = [f"AS{asn}x{count}" for asn, count in sorted(tally.items())]
    return " ".join(parts)


def first_divergence_report(
    world: World,
    rule: str,
    divergence: Divergence,
    mapit: MapIt,
    oracle_result: OracleResult,
) -> str:
    """Render the first divergence of a world as a readable report:
    the half, both final answers, both final tallies, and the oracle's
    journal of the half (iteration, pass, rule)."""
    half = divergence.half
    lines = [
        f"world {world.name} (remove_rule={rule}): first divergence",
        f"  {divergence.summary()}",
    ]
    engine = mapit.engine
    core_groups, _, core_total = engine.count_groups(half)
    lines.append(
        f"  core final tally   ({core_total} neighbors): {_tally_text(core_groups)}"
    )
    journal = oracle_result.journal_for(half)
    oracle_groups, oracle_total = _oracle_tally(
        engine.graph, world, half, oracle_result.final_visible
    )
    lines.append(
        f"  oracle final tally ({oracle_total} neighbors): {_tally_text(oracle_groups)}"
    )
    if journal:
        lines.append("  oracle journal for this half:")
        for entry in journal:
            detail = {
                key: value
                for key, value in entry.items()
                if key not in ("iteration", "pass", "rule", "address", "forward")
            }
            suffix = f" {detail}" if detail else ""
            lines.append(
                f"    iteration {entry['iteration']} pass {entry['pass']}: "
                f"{entry['rule']}{suffix}"
            )
    else:
        lines.append("  oracle journal for this half: (no entries)")
    return "\n".join(lines)


def compare_world(
    world: World,
    remove_rule: str = REMOVE_MAJORITY,
    config: Optional[MapItConfig] = None,
    obs: Observability = NULL_OBS,
) -> WorldOutcome:
    """Run oracle and core on *world* and diff the final inferences."""
    if config is None:
        config = MapItConfig(remove_rule=remove_rule)
    with obs.span("diff/world"):
        graph = build_graph(world)
        core_map, mapit = core_records(graph, world, config)
        oracle_map, oracle_result = oracle_records(
            graph, world, oracle_config_for(config)
        )
    outcome = WorldOutcome(
        world=world.name,
        remove_rule=remove_rule,
        core_inferences=len(core_map),
        oracle_inferences=len(oracle_map),
    )
    for half in sorted(set(core_map) | set(oracle_map)):
        core = core_map.get(half)
        oracle = oracle_map.get(half)
        if core != oracle:
            outcome.divergences.append(Divergence(half, core, oracle))
    if outcome.divergences:
        outcome.report = first_divergence_report(
            world, remove_rule, outcome.divergences[0], mapit, oracle_result
        )
    if obs.enabled:
        obs.inc("diff.worlds")
        obs.inc("diff.divergences", len(outcome.divergences))
    return outcome


def world_diverges(
    world: World, remove_rule: str = REMOVE_MAJORITY
) -> bool:
    """The shrinker's predicate: does *world* still diverge?"""
    try:
        return not compare_world(world, remove_rule).ok
    except Exception as exc:
        # A world mutilated into an outright crash is not a
        # reproduction of the original divergence; the shrinker must
        # reject the step, not die mid-minimization.
        logging.getLogger(__name__).debug(
            "shrink candidate %s crashed: %s: %s",
            world.name,
            type(exc).__name__,
            exc,
        )
        return False
