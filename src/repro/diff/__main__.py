"""Entry point: ``python -m repro.diff``."""

import sys

from repro.diff.cli import main

if __name__ == "__main__":
    sys.exit(main())
