"""Crash-safe file writes: temp file + rename, plus content checksums.

Every file a dataset directory contains is written through these
helpers.  The contract: a reader never observes a partially-written
file.  Content goes to a ``<name>.tmp.<pid>`` sibling first and is
moved into place with :func:`os.replace` (atomic on POSIX and Windows
within one filesystem) only after the write completed and was flushed;
a crash mid-write leaves the destination untouched (either absent or
the previous complete version) and the temp file is removed on error.

Writers return the SHA-256 of what they wrote so
:func:`repro.io.save.save_scenario` can record per-file checksums in
the manifest and :func:`repro.io.bundle.load_bundle` can detect
corruption that parsing alone would miss.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Union


def _temp_path(path: Path) -> Path:
    return path.with_name(f"{path.name}.tmp.{os.getpid()}")


def atomic_write_text(path: Union[str, Path], text: str) -> str:
    """Atomically write *text* to *path*; returns the content's sha256."""
    path = Path(path)
    temp = _temp_path(path)
    try:
        with open(temp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return hashlib.sha256(text.encode()).hexdigest()


def atomic_write_lines(path: Union[str, Path], lines: Iterable[str]) -> str:
    """Atomically write *lines* (newline-terminated) to *path*.

    The line iterable is fully consumed before the destination is
    touched — if it raises partway (a crash mid-serialization), the
    destination keeps its previous state.  Returns the sha256.
    """
    path = Path(path)
    temp = _temp_path(path)
    digest = hashlib.sha256()
    try:
        with open(temp, "w") as handle:
            for line in lines:
                data = line + "\n"
                handle.write(data)
                digest.update(data.encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return digest.hexdigest()


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> str:
    """Atomically write raw *data* to *path*; returns the content's sha256.

    Used by the bundle cache (:mod:`repro.perf.cache`) whose entries
    carry a binary payload: a reader either sees a complete entry or no
    entry, never a torn one, so a crash mid-store can only cost a cache
    miss, not serve corrupt traces.
    """
    path = Path(path)
    temp = _temp_path(path)
    try:
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return hashlib.sha256(data).hexdigest()


def atomic_write_json(path: Union[str, Path], obj, indent: int = 2) -> str:
    """Atomically write *obj* as JSON; returns the content's sha256."""
    return atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")


def file_sha256(path: Union[str, Path]) -> str:
    """SHA-256 of a file's bytes (streaming; no whole-file buffer)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()
