"""Ground-truth serialization.

The simulator's truth is persisted so saved datasets remain evaluable:
one line per interface, ``border|addr|router_as|connected_as|other|owner``,
``internal|addr|router_as`` or ``ixp|addr|member_as``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.io.atomic import atomic_write_lines
from repro.net.ipv4 import format_address, parse_address
from repro.sim.groundtruth import BorderInterface, GroundTruth


def ground_truth_lines(truth: GroundTruth) -> Iterator[str]:
    """Serialize *truth* line by line."""
    for address in sorted(truth.border):
        interface = truth.border[address]
        yield (
            f"border|{format_address(interface.address)}"
            f"|{interface.router_as}|{interface.connected_as}"
            f"|{format_address(interface.other_address)}|{interface.owner_as}"
        )
    for address in sorted(truth.internal):
        router_as = truth.router_as.get(address, 0)
        yield f"internal|{format_address(address)}|{router_as}"
    for address in sorted(truth.ixp):
        yield f"ixp|{format_address(address)}|{truth.ixp[address]}"


def parse_ground_truth(lines: Iterable[str]) -> GroundTruth:
    """Parse the format produced by :func:`ground_truth_lines`."""
    truth = GroundTruth()
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        kind, rest = line.split("|", 1)
        fields = rest.split("|")
        if kind == "border":
            address = parse_address(fields[0])
            interface = BorderInterface(
                address=address,
                router_as=int(fields[1]),
                connected_as=int(fields[2]),
                other_address=parse_address(fields[3]),
                owner_as=int(fields[4]),
            )
            truth.border[address] = interface
            truth.router_as[address] = interface.router_as
        elif kind == "internal":
            address = parse_address(fields[0])
            truth.internal.add(address)
            truth.router_as[address] = int(fields[1])
        elif kind == "ixp":
            address = parse_address(fields[0])
            truth.ixp[address] = int(fields[1])
            truth.router_as[address] = int(fields[1])
        else:
            raise ValueError(f"unknown ground-truth record kind {kind!r}")
    return truth


def save_ground_truth(truth: GroundTruth, path: Path) -> str:
    """Write *truth* to *path* atomically; returns the content sha256."""
    return atomic_write_lines(path, ground_truth_lines(truth))


def load_ground_truth(path: Path) -> GroundTruth:
    """Read ground truth from *path*."""
    with open(path) as handle:
        return parse_ground_truth(handle)
