"""Dataset-directory persistence.

A *dataset directory* is the on-disk shape of everything MAP-IT needs —
the same inputs the paper assembles from CAIDA/RouteViews/RIPE/
PeeringDB/PCH downloads:

```
dataset/
  manifest.json        # metadata: seed, counts, verification ASNs
  traces.txt           # one trace per line (text format)
  bgp/collector-*.txt  # one RIB dump per collector
  cymru.txt            # fallback prefix|asn table
  ixp.txt              # IXP prefix directory
  as2org.txt           # sibling groups
  relationships.txt    # CAIDA serial-1 relationships
  hostnames.txt        # optional: address<TAB>hostname
  groundtruth.txt      # optional: simulator truth for evaluation
```

:func:`save_scenario` writes a synthetic scenario out;
:func:`load_bundle` reads any conforming directory — including one
assembled from real measurement data — into the objects
:func:`repro.run_mapit` consumes.
"""

from repro.io.bundle import InputBundle, load_bundle
from repro.io.save import save_scenario
from repro.io.truth import load_ground_truth, save_ground_truth

__all__ = [
    "InputBundle",
    "load_bundle",
    "load_ground_truth",
    "save_ground_truth",
    "save_scenario",
]
