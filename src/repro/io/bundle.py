"""Reading a dataset directory into runnable inputs.

Loading degrades gracefully: required inputs (traces and at least one
IP2AS source) still hard-fail when absent or — in strict mode —
malformed, but a missing or corrupt *optional* dataset (IXP, AS2Org,
relationships, hostnames, ground truth, manifest) never aborts the
load; it becomes an empty dataset plus a warning in the returned
:class:`~repro.robust.health.BundleHealth` report.  Trace parsing runs
under the strict / lenient / quarantine policies of
:mod:`repro.robust.ingest`, and manifest checksums (written by
:func:`repro.io.save.save_scenario`) are verified when present.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder
from repro.bgp.origins import merge_collectors
from repro.bgp.table import CollectorDump
from repro.dns.naming import HostnameDataset
from repro.io.atomic import file_sha256
from repro.io.truth import load_ground_truth
from repro.ixp.dataset import IXPDataset
from repro.obs.observer import NULL_OBS, Observability
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.graph.neighbors import InterfaceGraph
from repro.robust.errors import ErrorBudget, IngestReport
from repro.robust.health import BundleHealth
from repro.robust.ingest import ingest_trace_file
from repro.sim.groundtruth import GroundTruth
from repro.traceroute.model import Trace


@dataclass
class InputBundle:
    """Everything loaded from a dataset directory.

    ``traces``, ``ip2as``, ``as2org`` and ``relationships`` are exactly
    the arguments of :func:`repro.run_mapit`; ``ground_truth`` and
    ``hostnames`` are optional evaluation extras.  ``health`` reports
    what loaded cleanly, what degraded, and what was rejected.

    When the bundle was loaded with ``graph_only=True`` and worker
    shards, ``graph`` holds the interface graph the fused loader built
    and ``traces`` is empty — the graph is all the inference passes
    need, and the trace objects were deliberately never materialized
    (docs/PERFORMANCE.md).
    """

    traces: List[Trace]
    ip2as: IP2AS
    as2org: AS2Org
    relationships: RelationshipDataset
    ground_truth: Optional[GroundTruth] = None
    hostnames: Optional[HostnameDataset] = None
    manifest: Dict = field(default_factory=dict)
    health: BundleHealth = field(default_factory=BundleHealth)
    graph: Optional[InterfaceGraph] = None

    def run_mapit(self, config=None, obs=None, jobs=1, shard_timeout=None):
        """Convenience: run MAP-IT over this bundle.

        ``jobs > 1`` shards sanitization and graph construction across
        worker processes (:mod:`repro.perf`); the result is identical.
        ``shard_timeout`` is the supervisor's per-shard deadline
        (docs/ROBUSTNESS.md).  A pre-built ``graph`` (fused loader)
        short-circuits straight into the inference passes.
        """
        if self.graph is not None:
            from repro.core.mapit import run_mapit_graph

            return run_mapit_graph(
                self.graph,
                self.ip2as,
                org=self.as2org,
                rel=self.relationships,
                config=config,
                obs=obs,
            )
        from repro import run_mapit

        return run_mapit(
            self.traces,
            self.ip2as,
            org=self.as2org,
            rel=self.relationships,
            config=config,
            obs=obs,
            jobs=jobs,
            shard_timeout=shard_timeout,
        )


def _read_lines(path: Path):
    with open(path, errors="replace") as handle:
        return handle.read().splitlines()


def _load_optional(
    health: BundleHealth,
    path: Path,
    loader: Callable,
    fallback: Callable,
):
    """Load an optional dataset file, degrading to *fallback* on error."""
    if not path.exists():
        health.record(path.name, "missing")
        return fallback()
    try:
        value = loader(path)
    except Exception as exc:  # noqa: BLE001 - optional data must never abort
        health.record(path.name, "degraded", f"{type(exc).__name__}: {exc}")
        return fallback()
    health.record(path.name, "ok")
    return value


def _verify_checksums(root: Path, manifest: Dict, health: BundleHealth) -> None:
    """Compare manifest checksums against the files on disk."""
    checksums = manifest.get("checksums")
    if not isinstance(checksums, dict):
        return
    for name, expected in sorted(checksums.items()):
        if not isinstance(expected, str) or not expected.startswith("sha256:"):
            continue
        path = root / name
        if not path.exists():
            continue  # missing-ness is reported per dataset, not here
        if file_sha256(path) != expected[len("sha256:"):]:
            health.checksum_failures.append(name)


def _ingest_traces_cached(
    traces_path: Path,
    *,
    mode: str,
    budget,
    quarantine_dir,
    obs: Observability,
    jobs: int,
    cache: Optional[Union[str, Path]],
    shard_timeout: Optional[float] = None,
    graph_only: bool = False,
    health: Optional[BundleHealth] = None,
):
    """Ingest the traces file, via the cache and/or worker shards.

    Returns ``(traces, report, graph)``.  The cache key is the file's
    content sha256 (the digest the manifest records), so a hit is
    provably the same bytes; only clean parses are stored, so the
    mode-dependent error machinery always runs for dirty files.  A hit
    emits the same ``ingest.end`` event and ``ingest.records.*``
    counters a clean parse would — cold and warm runs produce
    byte-identical ``--trace`` output, and the entry's format version
    is surfaced in *health* (``cache: hit`` in the summary).

    With *graph_only* true and ``jobs > 1`` the fused streaming path
    runs instead: workers parse + sanitize + fold their shard and only
    counter bundles cross the fork boundary, so ``traces`` comes back
    empty and ``graph`` pre-built (docs/PERFORMANCE.md).  A warm hit on
    a v2 (columnar) entry feeds the flat fold directly without ever
    materializing trace objects.
    """
    from repro.robust.ingest import finalize_ingest
    from repro.traceroute.parse import trace_format_for_path

    fused = graph_only and jobs > 1
    bundle_cache = None
    source_sha = None
    format = trace_format_for_path(traces_path.name)
    if cache is not None:
        from repro.perf.cache import BundleCache

        bundle_cache = BundleCache(cache, obs=obs)
        source_sha = file_sha256(traces_path)
        hit = bundle_cache.load_entry(source_sha, format)
        if hit is not None:
            if health is not None:
                health.cache_format = hit.format_label
            report = IngestReport(
                source=traces_path.name,
                mode=mode,
                parsed=hit.parsed,
                skipped=hit.skipped,
            )
            with obs.span("ingest"):
                pass
            report = finalize_ingest(report, [], obs=obs)
            if fused:
                from repro.perf.graph import build_graph_flat, build_graph_parallel

                if hit.flat is not None:
                    graph = build_graph_flat(
                        hit.flat, jobs, obs=obs, shard_timeout=shard_timeout
                    )
                else:
                    graph = build_graph_parallel(
                        hit.traces(), jobs, obs=obs, shard_timeout=shard_timeout
                    )
                return [], report, graph
            return hit.traces(), report, None
    if fused:
        from repro.perf.ingest import stream_graph_from_file

        graph, report, payload = stream_graph_from_file(
            traces_path,
            jobs,
            mode=mode,
            budget=budget,
            quarantine_dir=quarantine_dir,
            obs=obs,
            shard_timeout=shard_timeout,
            want_payload=bundle_cache is not None,
        )
        if bundle_cache is not None and payload is not None:
            bundle_cache.store_payload(source_sha, format, payload, report)
        return [], report, graph
    if jobs > 1:
        from repro.perf.ingest import ingest_trace_file_parallel

        traces, report = ingest_trace_file_parallel(
            traces_path,
            jobs,
            mode=mode,
            budget=budget,
            quarantine_dir=quarantine_dir,
            obs=obs,
            shard_timeout=shard_timeout,
        )
    else:
        traces, report = ingest_trace_file(
            traces_path,
            mode=mode,
            budget=budget,
            quarantine_dir=quarantine_dir,
            obs=obs,
        )
    if bundle_cache is not None:
        bundle_cache.store(source_sha, format, traces, report)
    return traces, report, None


def load_bundle(
    directory: Union[str, Path],
    *,
    on_error: str = "strict",
    max_error_rate: Optional[float] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    obs: Observability = NULL_OBS,
    jobs: int = 1,
    cache: Optional[Union[str, Path]] = None,
    shard_timeout: Optional[float] = None,
    graph_only: bool = False,
    skip_traces: bool = False,
) -> InputBundle:
    """Load a dataset directory (see :mod:`repro.io` for the layout).

    Only ``traces.txt`` (or ``traces.jsonl``) and at least one IP2AS
    source (``bgp/`` or ``cymru.txt``) are required; everything else is
    optional and defaults to empty datasets (recorded as warnings in
    the returned bundle's ``health``).

    *skip_traces* loads only the mapping datasets: the traces file is
    neither required nor read and the returned bundle's ``traces`` list
    is empty.  The serve daemon uses this — its traces arrive over a
    stream, so a serve dataset directory may legitimately carry no
    traces file at all (docs/SERVE.md).

    *on_error* selects the trace-ingestion policy (``strict`` /
    ``lenient`` / ``quarantine``); *max_error_rate* arms an
    :class:`~repro.robust.errors.ErrorBudget` over the malformed
    fraction in the non-strict modes; *quarantine_dir* overrides the
    default ``<dataset>/quarantine/`` reject directory.

    *jobs > 1* shards trace parsing across worker processes; *cache*
    names a :class:`~repro.perf.cache.BundleCache` directory keyed by
    the traces file's sha256 — a verified hit skips parsing entirely
    (docs/PERFORMANCE.md).  Both are optimizations only: traces,
    report, and observability events are identical either way.

    *graph_only* (with ``jobs > 1``) opts into the fused streaming
    loader: the returned bundle carries a pre-built interface ``graph``
    and an *empty* ``traces`` list — parsed traces never cross the fork
    boundary.  Only callers that don't need trace objects (the ``run``
    pipeline) should ask for it; evaluation and reporting paths keep
    the default.
    """
    root = Path(directory)
    health = BundleHealth()
    budget = ErrorBudget(max_error_rate) if max_error_rate is not None else None

    traces_txt = root / "traces.txt"
    traces_jsonl = root / "traces.jsonl"
    if traces_txt.exists():
        traces_path = traces_txt
    elif traces_jsonl.exists():
        traces_path = traces_jsonl
    elif skip_traces:
        traces_path = None
    else:
        raise FileNotFoundError(f"no traces.txt or traces.jsonl in {root}")
    if skip_traces:
        traces, graph = [], None
        health.record("traces", "skipped", "stream-fed (serve)")
    else:
        if on_error == "quarantine" and quarantine_dir is None:
            quarantine_dir = root / "quarantine"
        traces, ingest_report, graph = _ingest_traces_cached(
            traces_path,
            mode=on_error,
            budget=budget,
            quarantine_dir=quarantine_dir,
            obs=obs,
            jobs=jobs,
            cache=cache,
            shard_timeout=shard_timeout,
            graph_only=graph_only,
            health=health,
        )
        health.ingest = ingest_report
        health.record(
            traces_path.name,
            "ok" if ingest_report.ok else "degraded",
            ""
            if ingest_report.ok
            else f"{ingest_report.malformed} malformed record(s) rejected",
        )

    builder = IP2ASBuilder()
    bgp_dir = root / "bgp"
    dumps: List[CollectorDump] = []
    if bgp_dir.is_dir():
        for path in sorted(bgp_dir.glob("*.txt")):
            try:
                dumps.append(CollectorDump.from_lines(_read_lines(path)))
            except Exception as exc:  # noqa: BLE001
                if on_error == "strict":
                    raise
                health.record(
                    f"bgp/{path.name}", "corrupt", f"{type(exc).__name__}: {exc}"
                )
    if dumps:
        builder.add_bgp(merge_collectors(dumps))
    cymru_path = root / "cymru.txt"
    cymru_loaded = False
    if cymru_path.exists():
        try:
            builder.add_cymru(CymruTable.from_lines(_read_lines(cymru_path)))
            cymru_loaded = True
            health.record("cymru.txt", "ok")
        except Exception as exc:  # noqa: BLE001
            if on_error == "strict" or not dumps:
                raise
            health.record("cymru.txt", "corrupt", f"{type(exc).__name__}: {exc}")
    if not dumps and not cymru_loaded:
        if not bgp_dir.is_dir() and not cymru_path.exists():
            raise FileNotFoundError(f"no IP2AS source (bgp/ or cymru.txt) in {root}")
        raise ValueError(f"no usable IP2AS source (bgp/ or cymru.txt) in {root}")
    ixp = _load_optional(
        health,
        root / "ixp.txt",
        lambda path: IXPDataset.from_lines(_read_lines(path)),
        IXPDataset,
    )
    if ixp is not None:
        builder.set_ixp(ixp)
    ip2as = builder.build()

    as2org = _load_optional(
        health,
        root / "as2org.txt",
        lambda path: AS2Org.from_lines(_read_lines(path)),
        AS2Org,
    )
    relationships = _load_optional(
        health,
        root / "relationships.txt",
        lambda path: RelationshipDataset.from_lines(_read_lines(path)),
        RelationshipDataset,
    )
    ground_truth = _load_optional(
        health, root / "groundtruth.txt", load_ground_truth, lambda: None
    )
    hostnames = _load_optional(
        health,
        root / "hostnames.txt",
        lambda path: HostnameDataset.from_lines(_read_lines(path)),
        lambda: None,
    )
    manifest = _load_optional(
        health,
        root / "manifest.json",
        lambda path: json.loads(Path(path).read_text()),
        dict,
    )
    if not isinstance(manifest, dict):
        health.record("manifest.json", "degraded", "manifest is not a JSON object")
        manifest = {}
    _verify_checksums(root, manifest, health)
    return InputBundle(
        traces=traces,
        ip2as=ip2as,
        as2org=as2org,
        relationships=relationships,
        ground_truth=ground_truth,
        hostnames=hostnames,
        manifest=manifest,
        health=health,
        graph=graph,
    )
