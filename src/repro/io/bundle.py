"""Reading a dataset directory into runnable inputs."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder
from repro.bgp.origins import merge_collectors
from repro.bgp.table import CollectorDump
from repro.dns.naming import HostnameDataset
from repro.io.truth import load_ground_truth
from repro.ixp.dataset import IXPDataset
from repro.org.as2org import AS2Org
from repro.rel.relationships import RelationshipDataset
from repro.sim.groundtruth import GroundTruth
from repro.traceroute.model import Trace
from repro.traceroute.parse import parse_json_traces, parse_text_traces


@dataclass
class InputBundle:
    """Everything loaded from a dataset directory.

    ``traces``, ``ip2as``, ``as2org`` and ``relationships`` are exactly
    the arguments of :func:`repro.run_mapit`; ``ground_truth`` and
    ``hostnames`` are optional evaluation extras.
    """

    traces: List[Trace]
    ip2as: IP2AS
    as2org: AS2Org
    relationships: RelationshipDataset
    ground_truth: Optional[GroundTruth] = None
    hostnames: Optional[HostnameDataset] = None
    manifest: Dict = field(default_factory=dict)

    def run_mapit(self, config=None):
        """Convenience: run MAP-IT over this bundle."""
        from repro import run_mapit

        return run_mapit(
            self.traces,
            self.ip2as,
            org=self.as2org,
            rel=self.relationships,
            config=config,
        )


def _read_lines(path: Path):
    with open(path) as handle:
        return handle.read().splitlines()


def load_bundle(directory: Union[str, Path]) -> InputBundle:
    """Load a dataset directory (see :mod:`repro.io` for the layout).

    Only ``traces.txt`` (or ``traces.jsonl``) and at least one IP2AS
    source (``bgp/`` or ``cymru.txt``) are required; everything else is
    optional and defaults to empty datasets.
    """
    root = Path(directory)
    traces_txt = root / "traces.txt"
    traces_jsonl = root / "traces.jsonl"
    if traces_txt.exists():
        traces = list(parse_text_traces(_read_lines(traces_txt)))
    elif traces_jsonl.exists():
        traces = list(parse_json_traces(_read_lines(traces_jsonl)))
    else:
        raise FileNotFoundError(f"no traces.txt or traces.jsonl in {root}")

    builder = IP2ASBuilder()
    bgp_dir = root / "bgp"
    dumps: List[CollectorDump] = []
    if bgp_dir.is_dir():
        for path in sorted(bgp_dir.glob("*.txt")):
            dumps.append(CollectorDump.from_lines(_read_lines(path)))
    if dumps:
        builder.add_bgp(merge_collectors(dumps))
    cymru_path = root / "cymru.txt"
    if cymru_path.exists():
        builder.add_cymru(CymruTable.from_lines(_read_lines(cymru_path)))
    if not dumps and not cymru_path.exists():
        raise FileNotFoundError(f"no IP2AS source (bgp/ or cymru.txt) in {root}")
    ixp_path = root / "ixp.txt"
    if ixp_path.exists():
        builder.set_ixp(IXPDataset.from_lines(_read_lines(ixp_path)))
    ip2as = builder.build()

    as2org_path = root / "as2org.txt"
    as2org = (
        AS2Org.from_lines(_read_lines(as2org_path))
        if as2org_path.exists()
        else AS2Org()
    )
    rel_path = root / "relationships.txt"
    relationships = (
        RelationshipDataset.from_lines(_read_lines(rel_path))
        if rel_path.exists()
        else RelationshipDataset()
    )
    truth_path = root / "groundtruth.txt"
    ground_truth = load_ground_truth(truth_path) if truth_path.exists() else None
    hostnames_path = root / "hostnames.txt"
    hostnames = (
        HostnameDataset.from_lines(_read_lines(hostnames_path))
        if hostnames_path.exists()
        else None
    )
    manifest_path = root / "manifest.json"
    manifest = {}
    if manifest_path.exists():
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    return InputBundle(
        traces=traces,
        ip2as=ip2as,
        as2org=as2org,
        relationships=relationships,
        ground_truth=ground_truth,
        hostnames=hostnames,
        manifest=manifest,
    )
