"""Writing a scenario out as a dataset directory.

All files are written crash-safely (temp file + atomic rename, see
:mod:`repro.io.atomic`): an interrupted ``mapit simulate`` never leaves
a half-written ``traces.txt`` behind to be silently mis-loaded later.
The manifest, written last, records a SHA-256 checksum for every data
file so :func:`repro.io.bundle.load_bundle` can detect corruption that
parsing alone would not catch.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.dns.naming import HostnameDataset
from repro.io.atomic import atomic_write_json, atomic_write_lines
from repro.io.truth import save_ground_truth
from repro.sim.scenario import Scenario
from repro.traceroute.parse import traces_to_json_lines, traces_to_text_lines


def _write_lines(path: Path, lines) -> str:
    """Write newline-terminated *lines* atomically; returns the sha256."""
    return atomic_write_lines(path, lines)


def save_scenario(
    scenario: Scenario,
    directory: Union[str, Path],
    hostnames: Optional[HostnameDataset] = None,
    trace_format: str = "text",
) -> Path:
    """Persist *scenario* as a dataset directory; returns its path.

    *trace_format* is ``"text"`` (default) or ``"jsonl"`` for the
    scamper-like JSON-lines form.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    checksums: Dict[str, str] = {}
    if trace_format == "jsonl":
        checksums["traces.jsonl"] = _write_lines(
            root / "traces.jsonl", traces_to_json_lines(scenario.traces)
        )
    elif trace_format == "text":
        checksums["traces.txt"] = _write_lines(
            root / "traces.txt", traces_to_text_lines(scenario.traces)
        )
    else:
        raise ValueError(f"unknown trace_format {trace_format!r}")

    bgp_dir = root / "bgp"
    bgp_dir.mkdir(exist_ok=True)
    for dump in scenario.collector_dumps:
        checksums[f"bgp/{dump.name}.txt"] = _write_lines(
            bgp_dir / f"{dump.name}.txt", dump.dump_lines()
        )

    checksums["cymru.txt"] = _write_lines(root / "cymru.txt", scenario.cymru.dump_lines())
    checksums["ixp.txt"] = _write_lines(root / "ixp.txt", scenario.ixp_dataset.dump_lines())
    checksums["as2org.txt"] = _write_lines(root / "as2org.txt", scenario.as2org.dump_lines())
    checksums["relationships.txt"] = _write_lines(
        root / "relationships.txt", scenario.relationships.dump_lines()
    )
    checksums["groundtruth.txt"] = save_ground_truth(
        scenario.ground_truth, root / "groundtruth.txt"
    )
    if hostnames is not None:
        checksums["hostnames.txt"] = _write_lines(
            root / "hostnames.txt", hostnames.dump_lines()
        )

    manifest = {
        "format": "mapit-dataset-v1",
        "seed": scenario.config.seed,
        "traces": len(scenario.traces),
        "monitors": [monitor.name for monitor in scenario.monitors],
        "collectors": [dump.name for dump in scenario.collector_dumps],
        "verification_asns": scenario.verification_asns(),
        "re_asn": scenario.re_asn,
        "tier1_asns": scenario.tier1_asns,
        "checksums": {name: f"sha256:{value}" for name, value in sorted(checksums.items())},
    }
    atomic_write_json(root / "manifest.json", manifest)
    return root
