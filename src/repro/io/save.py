"""Writing a scenario out as a dataset directory."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.dns.naming import HostnameDataset
from repro.io.truth import save_ground_truth
from repro.sim.scenario import Scenario
from repro.traceroute.parse import traces_to_json_lines, traces_to_text_lines


def _write_lines(path: Path, lines) -> None:
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")


def save_scenario(
    scenario: Scenario,
    directory: Union[str, Path],
    hostnames: Optional[HostnameDataset] = None,
    trace_format: str = "text",
) -> Path:
    """Persist *scenario* as a dataset directory; returns its path.

    *trace_format* is ``"text"`` (default) or ``"jsonl"`` for the
    scamper-like JSON-lines form.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    if trace_format == "jsonl":
        _write_lines(root / "traces.jsonl", traces_to_json_lines(scenario.traces))
    elif trace_format == "text":
        _write_lines(root / "traces.txt", traces_to_text_lines(scenario.traces))
    else:
        raise ValueError(f"unknown trace_format {trace_format!r}")

    bgp_dir = root / "bgp"
    bgp_dir.mkdir(exist_ok=True)
    for dump in scenario.collector_dumps:
        _write_lines(bgp_dir / f"{dump.name}.txt", dump.dump_lines())

    _write_lines(root / "cymru.txt", scenario.cymru.dump_lines())
    _write_lines(root / "ixp.txt", scenario.ixp_dataset.dump_lines())
    _write_lines(root / "as2org.txt", scenario.as2org.dump_lines())
    _write_lines(root / "relationships.txt", scenario.relationships.dump_lines())
    save_ground_truth(scenario.ground_truth, root / "groundtruth.txt")
    if hostnames is not None:
        _write_lines(root / "hostnames.txt", hostnames.dump_lines())

    manifest = {
        "format": "mapit-dataset-v1",
        "seed": scenario.config.seed,
        "traces": len(scenario.traces),
        "monitors": [monitor.name for monitor in scenario.monitors],
        "collectors": [dump.name for dump in scenario.collector_dumps],
        "verification_asns": scenario.verification_asns(),
        "re_asn": scenario.re_asn,
        "tier1_asns": scenario.tier1_asns,
    }
    with open(root / "manifest.json", "w") as handle:
        json.dump(manifest, handle, indent=2)
    return root
