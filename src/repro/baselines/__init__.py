"""Baseline inter-AS link inference techniques (paper section 5.6)."""

from repro.baselines.alias import AliasClusters, AliasProfile, simulate_alias_resolution
from repro.baselines.convention import convention_heuristic
from repro.baselines.itdk import run_itdk
from repro.baselines.simple import simple_heuristic

__all__ = [
    "AliasClusters",
    "AliasProfile",
    "convention_heuristic",
    "run_itdk",
    "simple_heuristic",
    "simulate_alias_resolution",
]
