"""Simulated alias resolution (the MIDAR / kapar stand-ins).

The paper's ITDK comparison rests on router-level graphs produced by
alias resolution: MIDAR (active, conservative — few false aliases, many
missed ones) and kapar (analytic, aggressive — more coverage, more
false merges).  We cannot probe our synthetic routers' IP-ID counters,
so we model the two resolvers by perturbing the true address→router
assignment with each tool's characteristic error mix:

* *splits* (missed aliases): a router's interfaces fall into several
  inferred routers;
* *merges* (false aliases): two distinct routers' interface sets are
  unioned, possibly across AS boundaries — the error that wrecks
  router-to-AS mapping accuracy (the paper's section 5.6 explanation
  for the ITDK numbers).

The profiles below give MIDAR-like behaviour (split-heavy) and
kapar-like behaviour (merge-heavy) matching the qualitative error
modes reported for the real tools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.sim.network import Network


@dataclass(frozen=True)
class AliasProfile:
    """Error mix of a simulated alias resolver."""

    name: str
    #: probability an interface is split off its true router
    split_probability: float
    #: probability a router is merged with a topologically nearby one
    merge_probability: float

    @classmethod
    def midar_like(cls) -> "AliasProfile":
        return cls(name="midar", split_probability=0.25, merge_probability=0.02)

    @classmethod
    def kapar_like(cls) -> "AliasProfile":
        return cls(name="kapar", split_probability=0.10, merge_probability=0.12)


@dataclass
class AliasClusters:
    """Inferred routers: disjoint clusters of interface addresses."""

    clusters: List[Set[int]]

    def cluster_of(self) -> Dict[int, int]:
        """Map each address to its cluster index."""
        assignment: Dict[int, int] = {}
        for index, cluster in enumerate(self.clusters):
            for address in cluster:
                assignment[address] = index
        return assignment

    def __len__(self) -> int:
        return len(self.clusters)


def simulate_alias_resolution(
    network: Network,
    profile: AliasProfile,
    seed: int = 0,
    observed: Set[int] = None,
) -> AliasClusters:
    """Produce an imperfect router-level clustering of *network*.

    *observed*, when given, restricts clustering to addresses that
    actually appeared in traces (alias resolution can only run on
    addresses the measurement saw).
    """
    rng = random.Random(seed ^ 0xA11A5)
    by_router: Dict[int, List[int]] = {}
    for address, (router_id, _) in sorted(network.address_owner.items()):
        if observed is not None and address not in observed:
            continue
        by_router.setdefault(router_id, []).append(address)

    clusters: List[Set[int]] = []
    cluster_router: List[int] = []
    for router_id in sorted(by_router):
        addresses = by_router[router_id]
        kept: Set[int] = set()
        for address in addresses:
            if len(addresses) > 1 and rng.random() < profile.split_probability:
                clusters.append({address})
                cluster_router.append(router_id)
            else:
                kept.add(address)
        if kept:
            clusters.append(kept)
            cluster_router.append(router_id)

    # False merges: union a cluster with one belonging to an adjacent
    # router (that is where analytic resolvers make their mistakes —
    # shared subnets look like shared routers).
    adjacent: Dict[int, Set[int]] = {}
    for link in network.links.values():
        routers = [router_id for router_id, _ in link.endpoints]
        for router_id in routers:
            adjacent.setdefault(router_id, set()).update(
                other for other in routers if other != router_id
            )
    merged: List[Set[int]] = []
    merged_router: List[int] = []
    skip: Set[int] = set()
    for index, cluster in enumerate(clusters):
        if index in skip:
            continue
        if rng.random() < profile.merge_probability:
            neighbors = adjacent.get(cluster_router[index], set())
            candidates = [
                other
                for other in range(index + 1, len(clusters))
                if other not in skip and cluster_router[other] in neighbors
            ]
            if candidates:
                victim = rng.choice(candidates)
                cluster = cluster | clusters[victim]
                skip.add(victim)
        merged.append(cluster)
        merged_router.append(cluster_router[index])
    return AliasClusters(clusters=merged)
