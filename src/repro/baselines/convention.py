"""The Convention heuristic (paper section 5.6).

Like the Simple heuristic, but when the two ASes of an adjacency have a
transit relationship it applies the conventional wisdom that transit
links are numbered from the provider's space: whichever adjacent
address belongs to the provider is taken as the link interface.  With
no transit relationship (peering), it falls back to Simple.

The paper shows this helps at tier-1s but backfires on Internet2, whose
transit links are often numbered from the customer's space.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.bgp.ip2as import IP2AS
from repro.core.results import DIRECT, LinkInference
from repro.graph.halves import BACKWARD, FORWARD
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Trace


def convention_heuristic(
    traces: Iterable[Trace],
    ip2as: IP2AS,
    relationships: RelationshipDataset,
) -> List[LinkInference]:
    """Run the Convention heuristic over *traces*."""
    seen: Set[Tuple[int, int, int]] = set()
    inferences: List[LinkInference] = []
    for trace in traces:
        previous = None
        for hop in trace.hops:
            address = hop.address
            if address is None:
                previous = None
                continue
            if previous is not None:
                before_as = ip2as.asn(previous)
                after_as = ip2as.asn(address)
                if before_as > 0 and after_as > 0 and before_as != after_as:
                    provider = relationships.provider_of(before_as, after_as)
                    if provider == before_as:
                        # The provider-side address precedes the change:
                        # take it as the link interface.
                        chosen, forward = previous, FORWARD
                    else:
                        # Provider is the later AS, or no transit
                        # relationship: same choice as Simple.
                        chosen, forward = address, BACKWARD
                    key = (chosen, *sorted((before_as, after_as)))
                    if key not in seen:
                        seen.add(key)
                        inferences.append(
                            LinkInference(
                                address=chosen,
                                forward=forward,
                                local_as=ip2as.asn(chosen),
                                remote_as=(
                                    before_as
                                    if ip2as.asn(chosen) == after_as
                                    else after_as
                                ),
                                kind=DIRECT,
                            )
                        )
            previous = address
    return inferences
