"""A simplified bdrmap-flavoured baseline (paper section 6 future work).

bdrmap (Luckie et al., IMC 2016) infers the borders of the *network
hosting a traceroute monitor* and its directly connected neighbors,
using dedicated outward probing plus AS-relationship heuristics.  The
paper names a head-to-head comparison with MAP-IT as future work; this
module provides a faithful-in-spirit, passive-only stand-in so that
comparison can at least be run in the one context both methods share:
traces originating inside the network under study.

Algorithm (simplified):

1. take only traces launched from monitors inside the host AS;
2. in each trace, find the *exit*: the last hop of the inside segment,
   where the inside segment is the maximal prefix of hops announced by
   the host AS (or unannounced — border links are often numbered from
   neighbor space, so a single foreign-looking hop does not end the
   segment if the trace returns to host space immediately after);
3. vote, per first-outside interface, on the neighbor AS: the origin
   of the subsequent hops (two hops deep, to skip over link addressing);
4. keep interfaces whose dominant neighbor AS wins at least
   ``min_votes`` votes, preferring ASes that are BGP neighbors of the
   host per the relationship data (bdrmap's strongest heuristic).

Output records mirror the other baselines: the first-outside interface
is reported as the inter-AS link interface between the host AS and the
inferred neighbor.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Set

from repro.bgp.ip2as import IP2AS
from repro.core.results import DIRECT, LinkInference
from repro.graph.halves import BACKWARD
from repro.rel.relationships import RelationshipDataset
from repro.traceroute.model import Trace


def _exit_index(addresses: List[int], host_as: int, ip2as: IP2AS) -> Optional[int]:
    """Index of the last inside hop, or None when the trace never exits.

    A hop belongs to the inside segment when it is announced by the
    host, unannounced, or a foreign-announced blip followed immediately
    by host space again (neighbor-numbered border links pointing back
    in, or third-party responses).
    """
    last_inside = None
    for index, address in enumerate(addresses):
        asn = ip2as.asn(address)
        if asn == host_as or asn <= 0:
            last_inside = index
            continue
        next_asn = (
            ip2as.asn(addresses[index + 1]) if index + 1 < len(addresses) else None
        )
        if next_asn == host_as:
            last_inside = index
            continue
        break
    if last_inside is None or last_inside + 1 >= len(addresses):
        return None
    return last_inside


def bdrmap_like(
    traces: Iterable[Trace],
    host_as: int,
    ip2as: IP2AS,
    relationships: Optional[RelationshipDataset] = None,
    min_votes: int = 2,
) -> List[LinkInference]:
    """Infer the host AS's border interfaces from its outbound traces."""
    relationships = relationships or RelationshipDataset()
    neighbor_votes: Dict[int, Counter] = defaultdict(Counter)
    for trace in traces:
        addresses = [hop.address for hop in trace.hops if hop.address is not None]
        if not addresses or ip2as.asn(addresses[0]) != host_as:
            continue  # not launched inside the host network
        exit_at = _exit_index(addresses, host_as, ip2as)
        if exit_at is None:
            continue
        first_outside = addresses[exit_at + 1]
        # Look up to two hops beyond the border: the far side of the
        # link may be numbered from the host's space, so the hop after
        # it is often the better neighbor signal.
        votes = neighbor_votes[first_outside]
        for peek in addresses[exit_at + 1 : exit_at + 3]:
            asn = ip2as.asn(peek)
            if asn > 0 and asn != host_as:
                votes[asn] += 1
                break

    known_neighbors: Set[int] = (
        relationships.providers(host_as)
        | relationships.customers(host_as)
        | relationships.peers(host_as)
    )
    inferences: List[LinkInference] = []
    for interface in sorted(neighbor_votes):
        votes = neighbor_votes[interface]
        if not votes:
            continue
        best_count = max(votes.values())
        candidates = [asn for asn, count in votes.items() if count == best_count]
        # bdrmap heuristic: a known BGP neighbor beats an unknown AS.
        preferred = [asn for asn in candidates if asn in known_neighbors]
        neighbor = min(preferred or candidates)
        if best_count < min_votes and neighbor not in known_neighbors:
            continue
        inferences.append(
            LinkInference(
                address=interface,
                forward=BACKWARD,
                local_as=ip2as.asn(interface),
                remote_as=neighbor if neighbor != host_as else host_as,
                kind=DIRECT,
            )
        )
    # Normalize: the record's pair must be (host, neighbor).
    normalized = []
    for inference in inferences:
        local = host_as
        remote = inference.remote_as
        normalized.append(
            LinkInference(
                address=inference.address,
                forward=inference.forward,
                local_as=local,
                remote_as=remote,
                kind=DIRECT,
            )
        )
    return normalized
