"""ITDK-style inter-AS link inference (paper section 5.6).

Reproduces the pipeline behind CAIDA's Internet Topology Data Kit
comparators:

1. **alias resolution** groups interface addresses into inferred
   routers (:mod:`repro.baselines.alias` provides MIDAR-like and
   kapar-like error profiles);
2. **router-to-AS assignment** follows Huffaker et al.'s election
   heuristic: a router is assigned the AS announcing the plurality of
   its interface addresses (ties to the lowest ASN);
3. **link extraction** walks trace adjacencies; where consecutive
   addresses belong to routers assigned different ASes, the second
   address (the far router's ingress) is reported as the inter-AS link
   interface between the two routers' ASes.

The characteristic failure mode — imperfect aliases feeding wrong
router-to-AS votes feeding wrong link ASes — emerges naturally.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.baselines.alias import AliasClusters, AliasProfile, simulate_alias_resolution
from repro.bgp.ip2as import IP2AS
from repro.core.results import DIRECT, LinkInference
from repro.graph.halves import BACKWARD
from repro.sim.network import Network
from repro.traceroute.model import Trace


def assign_routers_to_ases(
    clusters: AliasClusters, ip2as: IP2AS
) -> Dict[int, int]:
    """Huffaker-style election: plurality of interface origins."""
    assignment: Dict[int, int] = {}
    for index, cluster in enumerate(clusters.clusters):
        votes = Counter()
        for address in cluster:
            asn = ip2as.asn(address)
            if asn > 0:
                votes[asn] += 1
        if votes:
            top = max(votes.values())
            assignment[index] = min(
                asn for asn, count in votes.items() if count == top
            )
    return assignment


def itdk_links(
    traces: Iterable[Trace],
    clusters: AliasClusters,
    ip2as: IP2AS,
) -> List[LinkInference]:
    """Extract inter-AS link interfaces from a router-level graph."""
    cluster_of = clusters.cluster_of()
    router_as = assign_routers_to_ases(clusters, ip2as)
    seen: Set[Tuple[int, int, int]] = set()
    inferences: List[LinkInference] = []
    for trace in traces:
        previous = None
        for hop in trace.hops:
            address = hop.address
            if address is None:
                previous = None
                continue
            if previous is not None:
                before = router_as.get(cluster_of.get(previous, -1))
                after = router_as.get(cluster_of.get(address, -1))
                if (
                    before is not None
                    and after is not None
                    and before != after
                ):
                    key = (address, *sorted((before, after)))
                    if key not in seen:
                        seen.add(key)
                        inferences.append(
                            LinkInference(
                                address=address,
                                forward=BACKWARD,
                                local_as=after,
                                remote_as=before,
                                kind=DIRECT,
                            )
                        )
            previous = address
    return inferences


def run_itdk(
    traces: List[Trace],
    network: Network,
    ip2as: IP2AS,
    profile: Optional[AliasProfile] = None,
    seed: int = 0,
) -> List[LinkInference]:
    """The full ITDK-style pipeline on one dataset."""
    profile = profile or AliasProfile.midar_like()
    observed: Set[int] = set()
    for trace in traces:
        for hop in trace.hops:
            if hop.address is not None:
                observed.add(hop.address)
    clusters = simulate_alias_resolution(network, profile, seed=seed, observed=observed)
    return itdk_links(traces, clusters, ip2as)
