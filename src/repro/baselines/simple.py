"""The Simple heuristic (paper section 5.6).

Scan each trace for adjacent addresses mapped to different ASes and
assume the *first address in the different AS* is the inter-AS link
interface.  The paper uses this as the strawman every per-trace method
reduces to: it ignores the shared link prefix, third-party addresses,
and load balancing, and may infer many different links for the same
interface address.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.bgp.ip2as import IP2AS
from repro.core.results import DIRECT, LinkInference
from repro.graph.halves import BACKWARD
from repro.traceroute.model import Trace


def simple_heuristic(traces: Iterable[Trace], ip2as: IP2AS) -> List[LinkInference]:
    """Run the Simple heuristic over *traces*.

    Returns one inference per distinct ``(interface, AS pair)``; the
    interface is the first address past the AS change, which the
    heuristic assumes to be the link interface.
    """
    seen: Set[Tuple[int, int, int]] = set()
    inferences: List[LinkInference] = []
    for trace in traces:
        previous = None
        for hop in trace.hops:
            address = hop.address
            if address is None:
                previous = None
                continue
            if previous is not None:
                before_as = ip2as.asn(previous)
                after_as = ip2as.asn(address)
                if before_as > 0 and after_as > 0 and before_as != after_as:
                    key = (address, *sorted((before_as, after_as)))
                    if key not in seen:
                        seen.add(key)
                        inferences.append(
                            LinkInference(
                                address=address,
                                forward=BACKWARD,
                                local_as=after_as,
                                remote_as=before_as,
                                kind=DIRECT,
                            )
                        )
            previous = address
    return inferences
