"""``python -m repro`` — the same CLI as the installed ``mapit`` command."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
