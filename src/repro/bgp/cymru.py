"""Team Cymru-style IP-to-AS fallback table.

The paper consults the Team Cymru mapping service for prefixes that do
not appear in any of its BGP dumps.  We model that service as a static
``prefix -> origin AS`` table (which is what the service is, operationally:
an aggregated view built from many more peering sessions than any single
research collector set).  The table is loaded from a simple text format
and queried by longest-prefix match.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


class CymruTable:
    """A fallback longest-prefix-match ``address -> AS`` table."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()

    def add(self, prefix: Prefix, origin: int) -> None:
        """Map *prefix* to *origin*."""
        self._trie.insert(prefix, origin)

    def lookup(self, address: int) -> Optional[int]:
        """Origin AS for *address*, or None when uncovered."""
        return self._trie.lookup_value(address)

    def __len__(self) -> int:
        return len(self._trie)

    def items(self) -> Iterator[Tuple[Prefix, int]]:
        return self._trie.items()

    def dump_lines(self) -> Iterator[str]:
        """Serialize as ``prefix|asn`` lines."""
        for prefix, origin in self._trie.items():
            yield f"{prefix}|{origin}"

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "CymruTable":
        """Parse the format produced by :meth:`dump_lines`."""
        table = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            prefix_text, _, asn_text = line.partition("|")
            table.add(Prefix.parse(prefix_text), int(asn_text))
        return table
