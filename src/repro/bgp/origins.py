"""Merging prefix origins across BGP collectors.

Using many collectors (the paper uses 40) exposes prefixes that are
aggregated or simply not propagated everywhere.  Merging their views
yields, per prefix, the set of origin ASes observed anywhere — usually
a single AS, but MOAS (multiple-origin AS) prefixes do occur.  The
merge policy here mirrors common practice: for a MOAS prefix the origin
seen by the most collectors wins, with the numerically smallest AS as a
deterministic tie-break.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Set

from repro.bgp.table import CollectorDump
from repro.net.prefix import Prefix


@dataclass
class OriginTable:
    """Per-prefix origin information merged across collectors."""

    #: prefix -> Counter of origin AS -> number of collector observations
    observations: Dict[Prefix, Counter] = field(default_factory=dict)

    def record(self, prefix: Prefix, origin: int, weight: int = 1) -> None:
        """Record one observation of *origin* announcing *prefix*."""
        counter = self.observations.get(prefix)
        if counter is None:
            counter = Counter()
            self.observations[prefix] = counter
        counter[origin] += weight

    def origins(self, prefix: Prefix) -> Set[int]:
        """All origin ASes ever observed for *prefix*."""
        counter = self.observations.get(prefix)
        return set(counter) if counter else set()

    def best_origin(self, prefix: Prefix) -> int:
        """The winning origin for *prefix* under the MOAS policy.

        Raises KeyError when the prefix was never observed.
        """
        counter = self.observations[prefix]
        best_count = max(counter.values())
        return min(asn for asn, count in counter.items() if count == best_count)

    def moas_prefixes(self) -> Dict[Prefix, Set[int]]:
        """Prefixes announced by more than one origin AS."""
        return {
            prefix: set(counter)
            for prefix, counter in self.observations.items()
            if len(counter) > 1
        }

    def best_origins(self) -> Mapping[Prefix, int]:
        """Resolved ``prefix -> origin`` map for every observed prefix."""
        return {prefix: self.best_origin(prefix) for prefix in self.observations}

    def __len__(self) -> int:
        return len(self.observations)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.observations


def merge_collectors(dumps: Iterable[CollectorDump]) -> OriginTable:
    """Merge RIB dumps from many collectors into one origin table.

    Each collector contributes at most one observation per
    ``(prefix, origin)`` pair, so a collector holding many paths to the
    same prefix does not outvote other collectors.
    """
    table = OriginTable()
    for dump in dumps:
        seen: Set[tuple] = set()
        per_dump: Dict[Prefix, Set[int]] = defaultdict(set)
        for announcement in dump:
            per_dump[announcement.prefix].add(announcement.origin)
        for prefix, origins in per_dump.items():
            for origin in origins:
                key = (prefix, origin)
                if key not in seen:
                    seen.add(key)
                    table.record(prefix, origin)
    return table
