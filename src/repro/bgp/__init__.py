"""BGP announcement handling and IP-to-AS mapping.

The paper derives its initial IP2AS mapping from BGP RIB dumps taken at
40 collectors (RouteViews, RIPE RIS, Internet2), falling back to the
Team Cymru mapping service for prefixes absent from the dumps, and
layering IXP prefixes and special-purpose registries on top.  This
package provides the same stack:

* :mod:`repro.bgp.table` — announcement records and collector dumps;
* :mod:`repro.bgp.origins` — merging announcements across collectors,
  including MOAS (multiple-origin AS) resolution;
* :mod:`repro.bgp.cymru` — a Team Cymru-style fallback table;
* :mod:`repro.bgp.ip2as` — the composite mapper the algorithm consumes.
"""

from repro.bgp.cymru import CymruTable
from repro.bgp.ip2as import IP2AS, IP2ASBuilder, IXP_AS, PRIVATE_AS, UNKNOWN_AS
from repro.bgp.origins import OriginTable, merge_collectors
from repro.bgp.table import Announcement, CollectorDump

__all__ = [
    "Announcement",
    "CollectorDump",
    "CymruTable",
    "IP2AS",
    "IP2ASBuilder",
    "IXP_AS",
    "OriginTable",
    "PRIVATE_AS",
    "UNKNOWN_AS",
    "merge_collectors",
]
