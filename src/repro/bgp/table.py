"""BGP announcement records and per-collector RIB dumps.

A RIB dump is modelled as the set of ``(prefix, AS path)`` routes a
collector holds; the origin AS is the last hop of the AS path.  We keep
the full path (not just the origin) because path data is also what the
simulator emits, and because AS-path information is useful for
relationship inference in the :mod:`repro.rel` substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

from repro.net.prefix import Prefix


@dataclass(frozen=True)
class Announcement:
    """One route: a prefix plus the AS path that reached the collector.

    ``as_path`` is ordered from the collector's peer to the origin, so
    ``as_path[-1]`` is the origin AS.
    """

    prefix: Prefix
    as_path: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("empty AS path")

    @property
    def origin(self) -> int:
        """The origin AS (last hop of the AS path)."""
        return self.as_path[-1]

    def to_line(self) -> str:
        """Serialize to the textual dump format."""
        path = " ".join(str(asn) for asn in self.as_path)
        return f"{self.prefix}|{path}"

    @classmethod
    def from_line(cls, line: str) -> "Announcement":
        """Parse a line produced by :meth:`to_line`."""
        prefix_text, _, path_text = line.strip().partition("|")
        if not path_text:
            raise ValueError(f"malformed announcement line: {line!r}")
        path = tuple(int(tok) for tok in path_text.split())
        return cls(Prefix.parse(prefix_text), path)


@dataclass
class CollectorDump:
    """All routes held by one collector (one RIB dump).

    ``name`` identifies the collector (e.g. ``"route-views2"``), and
    ``location`` is free-form metadata mirroring the paper's interest in
    geographically diverse collectors.
    """

    name: str
    location: str = ""
    announcements: List[Announcement] = field(default_factory=list)

    def add(self, announcement: Announcement) -> None:
        self.announcements.append(announcement)

    def add_route(self, prefix: Prefix, as_path: Iterable[int]) -> None:
        self.announcements.append(Announcement(prefix, tuple(as_path)))

    def __iter__(self) -> Iterator[Announcement]:
        return iter(self.announcements)

    def __len__(self) -> int:
        return len(self.announcements)

    def prefixes(self) -> set:
        """The set of distinct prefixes in this dump."""
        return {a.prefix for a in self.announcements}

    def dump_lines(self) -> Iterator[str]:
        """Serialize to the textual dump format, one route per line."""
        yield f"#collector {self.name} {self.location}".rstrip()
        for announcement in self.announcements:
            yield announcement.to_line()

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "CollectorDump":
        """Parse the format produced by :meth:`dump_lines`."""
        dump = cls(name="unnamed")
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#collector"):
                parts = line.split(maxsplit=2)
                dump.name = parts[1] if len(parts) > 1 else "unnamed"
                dump.location = parts[2] if len(parts) > 2 else ""
                continue
            dump.add(Announcement.from_line(line))
        return dump
