"""Composite IP-to-AS mapper (the "IP2AS tool" of the paper).

Lookup layering mirrors section 5 of the paper:

1. special-purpose/private prefixes (RFC 6890) — not mappable, the
   algorithm must ignore such addresses entirely;
2. IXP prefixes (PeeringDB/PCH plus IXP ASNs found in BGP) — flagged so
   MAP-IT can skip other-side updates on multipoint IXP LANs;
3. BGP-derived longest-prefix match over the merged collector view;
4. Team Cymru-style fallback for prefixes absent from the BGP dumps.

Addresses covered by none of these map to :data:`UNKNOWN_AS`; the paper
reports 99.2% coverage of usable interfaces, and explicitly declines to
update mappings of unannounced addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bgp.cymru import CymruTable
from repro.bgp.origins import OriginTable
from repro.ixp.dataset import IXPDataset
from repro.net.prefix import Prefix
from repro.net.special import SpecialPurposeRegistry, default_special_registry
from repro.net.trie import PrefixTrie

#: Sentinel for addresses no layer covers.
UNKNOWN_AS = 0
#: Sentinel for special-purpose/private addresses.
PRIVATE_AS = -1
#: Sentinel for IXP LAN addresses without a known IXP ASN.
IXP_AS = -2


@dataclass
class _Entry:
    origin: int
    source: str


class IP2AS:
    """Immutable composite address-to-AS mapper.

    Use :class:`IP2ASBuilder` to construct one from datasets, or
    :meth:`from_pairs` in tests.
    """

    def __init__(
        self,
        trie: PrefixTrie,
        special: SpecialPurposeRegistry,
        ixp: Optional[IXPDataset] = None,
    ) -> None:
        self._trie = trie
        self._special = special
        self._ixp = ixp or IXPDataset()

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable,
        ixp: Optional[IXPDataset] = None,
        special: Optional[SpecialPurposeRegistry] = None,
    ) -> "IP2AS":
        """Build a mapper directly from ``(prefix, asn)`` pairs.

        Prefixes may be :class:`Prefix` objects or ``"a.b.c.d/len"``
        strings.  Intended for tests and small examples.
        """
        trie = PrefixTrie()
        for prefix, asn in pairs:
            if isinstance(prefix, str):
                prefix = Prefix.parse(prefix)
            trie.insert(prefix, _Entry(asn, "pairs"))
        return cls(trie, special or default_special_registry(), ixp)

    def asn(self, address: int) -> int:
        """The origin AS for *address*.

        Returns :data:`PRIVATE_AS` for special-purpose addresses,
        :data:`IXP_AS` (or the IXP's ASN when known) for IXP LAN
        addresses, and :data:`UNKNOWN_AS` when nothing covers the
        address.
        """
        if self._special.is_special(address):
            return PRIVATE_AS
        if self._ixp.covers(address):
            ixp_asn = self._ixp.asn_for(address)
            return ixp_asn if ixp_asn is not None else IXP_AS
        entry = self._trie.lookup_value(address)
        return entry.origin if entry is not None else UNKNOWN_AS

    def is_private(self, address: int) -> bool:
        """True for special-purpose/private addresses."""
        return self._special.is_special(address)

    def is_ixp(self, address: int) -> bool:
        """True for addresses on known IXP LAN prefixes."""
        return self._ixp.covers(address)

    def is_mapped(self, address: int) -> bool:
        """True when some layer resolves *address* to an AS or marker."""
        return self.asn(address) != UNKNOWN_AS

    def source(self, address: int) -> str:
        """Which layer resolved *address* (for diagnostics)."""
        if self._special.is_special(address):
            return "special"
        if self._ixp.covers(address):
            return "ixp"
        entry = self._trie.lookup_value(address)
        return entry.source if entry is not None else "unknown"

    def coverage(self, addresses: Iterable[int]) -> float:
        """Fraction of *addresses* that resolve to something known."""
        total = 0
        covered = 0
        for address in addresses:
            total += 1
            if self.asn(address) != UNKNOWN_AS:
                covered += 1
        return covered / total if total else 0.0


class IP2ASBuilder:
    """Assemble an :class:`IP2AS` from the constituent datasets."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self._special = default_special_registry()
        self._ixp: Optional[IXPDataset] = None

    def add_bgp(self, origins: OriginTable) -> "IP2ASBuilder":
        """Layer in the merged BGP collector view (highest priority)."""
        for prefix, origin in origins.best_origins().items():
            self._trie.insert(prefix, _Entry(origin, "bgp"))
        return self

    def add_cymru(self, table: CymruTable) -> "IP2ASBuilder":
        """Layer in the fallback table.

        Only prefixes not already present from BGP are added, matching
        the paper's "for prefixes not seen in the BGP announcements".
        """
        for prefix, origin in table.items():
            if self._trie.exact(prefix) is None:
                self._trie.insert(prefix, _Entry(origin, "cymru"))
        return self

    def set_ixp(self, dataset: IXPDataset) -> "IP2ASBuilder":
        """Attach the IXP prefix dataset."""
        self._ixp = dataset
        return self

    def set_special(self, registry: SpecialPurposeRegistry) -> "IP2ASBuilder":
        """Replace the special-purpose registry (tests only)."""
        self._special = registry
        return self

    def build(self) -> IP2AS:
        return IP2AS(self._trie, self._special, self._ixp)
