"""Repository tooling: link checker, mapitlint static analysis."""
