#!/usr/bin/env python3
"""Check intra-repo markdown links, including heading anchors.

Walks every ``*.md`` file in the repository (skipping dot-directories
and virtualenv-style trees), extracts inline links (``[[wiki]]``
style references are left alone), and verifies that every relative
link target exists on disk.  Links carrying a ``#fragment`` — whether
``other.md#section`` or a same-file ``#section`` — are additionally
resolved against the target document's headings using GitHub's
anchor-slug algorithm (lowercase, punctuation stripped, spaces to
hyphens, ``-N`` suffixes for duplicates); a fragment naming no heading
is a broken link.  External links (``http://``, ``https://``,
``mailto:``) are not fetched.  Exits non-zero listing every broken
link.

Usage: ``python tools/check_links.py [ROOT]`` (default: repo root).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Set

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.M)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)
SKIP_DIRS = {".git", ".venv", "venv", "node_modules", "__pycache__", ".pytest_cache"}
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

_ANCHOR_CACHE: Dict[Path, Set[str]] = {}


def slugify(heading: str) -> str:
    """GitHub's heading -> anchor id transform (close enough for ASCII)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.replace("*", "").replace("_", " ").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" +", "-", text)


def anchors(path: Path) -> Set[str]:
    """Every valid anchor fragment in the markdown file at *path*."""
    cached = _ANCHOR_CACHE.get(path)
    if cached is not None:
        return cached
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: Set[str] = set()
    counts: Dict[str, int] = {}
    for match in HEADING.finditer(text):
        slug = slugify(match.group(1))
        count = counts.get(slug, 0)
        counts[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    _ANCHOR_CACHE[path] = slugs
    return slugs


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        inner = path.parts[len(root.parts):-1]
        if any(part in SKIP_DIRS or part.startswith(".") for part in inner):
            continue
        yield path


def check_file(path: Path, root: Path) -> list:
    broken = []
    text = path.read_text(encoding="utf-8")
    targets = LINK.findall(text) + IMAGE.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL):
            continue
        resolved, _, fragment = target.partition("#")
        if resolved.startswith("/"):
            candidate = root / resolved.lstrip("/")
        elif resolved:
            candidate = path.parent / resolved
        else:
            candidate = path  # pure fragment: same document
        if resolved and not candidate.exists():
            broken.append((path.relative_to(root), target, "missing file"))
            continue
        if fragment and candidate.suffix == ".md" and candidate.is_file():
            if fragment.lower() not in anchors(candidate):
                broken.append((path.relative_to(root), target, "missing anchor"))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    broken = []
    count = 0
    for path in markdown_files(root):
        count += 1
        broken.extend(check_file(path, root))
    if broken:
        for source, target, why in broken:
            print(f"BROKEN ({why}): {source}: {target}")
        print(f"{len(broken)} broken link(s) across {count} markdown file(s)")
        return 1
    print(f"ok: {count} markdown file(s), no broken intra-repo links or anchors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
