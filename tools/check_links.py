#!/usr/bin/env python3
"""Check intra-repo markdown links.

Walks every ``*.md`` file in the repository (skipping dot-directories
and virtualenv-style trees), extracts inline links and ``[[wiki]]``
style references are left alone, and verifies that every relative link
target exists on disk. External links (``http://``, ``https://``,
``mailto:``) and pure fragments (``#section``) are not fetched or
resolved. Exits non-zero listing every broken link.

Usage: ``python tools/check_links.py [ROOT]`` (default: repo root).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", ".venv", "venv", "node_modules", "__pycache__", ".pytest_cache"}
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS or part.startswith(".") for part in path.parts[len(root.parts):-1]):
            continue
        yield path


def check_file(path: Path, root: Path) -> list:
    broken = []
    text = path.read_text(encoding="utf-8")
    targets = LINK.findall(text) + IMAGE.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            candidate = root / resolved.lstrip("/")
        else:
            candidate = path.parent / resolved
        if not candidate.exists():
            broken.append((path.relative_to(root), target))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    broken = []
    count = 0
    for path in markdown_files(root):
        count += 1
        broken.extend(check_file(path, root))
    if broken:
        for source, target in broken:
            print(f"BROKEN: {source}: {target}")
        print(f"{len(broken)} broken link(s) across {count} markdown file(s)")
        return 1
    print(f"ok: {count} markdown file(s), no broken intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
