"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* identifies the violation across edits that merely shift
line numbers: it hashes the rule id, the repo-relative path, the
stripped text of the offending line, and an occurrence index that
disambiguates identical lines in the same file.  The baseline file
(see :mod:`tools.mapitlint.baseline`) stores fingerprints, so
re-ordering unrelated code does not invalidate grandfathered entries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class Finding:
    """One rule violation at one source location.

    Whole-program rules that relate two locations (a race's writer and
    reader, a taint source and sink, a worker field and its fork-map
    call site) put the secondary location in ``related``; it rides
    along in reports but stays out of the fingerprint, so a finding's
    identity is its primary location alone.
    """

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = ""
    related: str = ""  # secondary location ("path:line (context)")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "related": self.related,
        }

    def __str__(self) -> str:
        base = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.related:
            base += f" [related: {self.related}]"
        return base


def normalize_snippet(snippet: str) -> str:
    """The fingerprint's view of a source line: all whitespace runs
    collapsed to single spaces, so re-indenting a block (or re-wrapping
    inner spacing) does not churn the baseline."""
    return " ".join(snippet.split())


def _raw_fingerprint(rule: str, path: str, normalized: str, occurrence: int) -> str:
    digest = hashlib.sha256(
        f"{rule}|{path}|{normalized}|{occurrence}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def legacy_fingerprint(rule: str, path: str, snippet: str, occurrence: int) -> str:
    """The v1 fingerprint (strip-only normalization) — kept so baseline
    migration can match entries written before whitespace collapsing."""
    return _raw_fingerprint(rule, path, snippet.strip(), occurrence)


def assign_fingerprints(findings: List[Finding]) -> None:
    """Fill in ``fingerprint`` on every finding, in place.

    Findings sharing (rule, path, normalized line text) get increasing
    occurrence indices in (line, col) order so duplicates stay distinct.
    """
    seen: Dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        normalized = normalize_snippet(finding.snippet)
        key = (finding.rule, finding.path, normalized)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        finding.fingerprint = _raw_fingerprint(
            finding.rule, finding.path, normalized, occurrence
        )


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: path, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
