"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* identifies the violation across edits that merely shift
line numbers: it hashes the rule id, the repo-relative path, the
stripped text of the offending line, and an occurrence index that
disambiguates identical lines in the same file.  The baseline file
(see :mod:`tools.mapitlint.baseline`) stores fingerprints, so
re-ordering unrelated code does not invalidate grandfathered entries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _raw_fingerprint(rule: str, path: str, normalized: str, occurrence: int) -> str:
    digest = hashlib.sha256(
        f"{rule}|{path}|{normalized}|{occurrence}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def assign_fingerprints(findings: List[Finding]) -> None:
    """Fill in ``fingerprint`` on every finding, in place.

    Findings sharing (rule, path, normalized line text) get increasing
    occurrence indices in (line, col) order so duplicates stay distinct.
    """
    seen: Dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        normalized = finding.snippet.strip()
        key = (finding.rule, finding.path, normalized)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        finding.fingerprint = _raw_fingerprint(
            finding.rule, finding.path, normalized, occurrence
        )


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: path, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
