"""Bounded intraprocedural reaching-definitions and interprocedural taint.

The engine is deliberately small: DET003 needs to know whether a
wall-clock or entropy value can *reach* a fingerprint, journal record,
cache key, or snapshot field — it does not need a full may/must
dataflow framework.  Two pieces:

* **Reaching definitions (intraprocedural).**  A forward pass over a
  function's statements in source order, with strong updates: the last
  assignment to a local wins, so ``x = time.time(); x = 0`` leaves
  ``x`` clean.  The pass runs twice to approximate loop back-edges
  (a definition late in a loop body reaches uses earlier in the next
  iteration) — two passes reach a fixpoint for any single-level cycle,
  which is all the codebase's hot loops contain.

* **Taint summaries (interprocedural, depth-bounded).**  Each function
  gets a memoised summary: does its return value carry source taint,
  and which parameters flow through to the return?  Summaries are
  computed to ``MAX_DEPTH`` call levels (the acceptance bar is "two
  calls deep into a fingerprint"); beyond the bound a call is treated
  as clean — precision over completeness, so findings stay
  suppressible and low-noise.

Taint propagates through arithmetic, f-strings, ``str()``/formatting,
tuples, and *unknown* calls with a tainted argument (``str(now)`` is
as tainted as ``now``).  Every :class:`TaintOrigin` carries the hop
chain from source to the point of use, so a finding can name both
ends.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from tools.mapitlint.project import FunctionInfo, ProjectModel

#: interprocedural summary depth (source → helper → helper → sink)
MAX_DEPTH = 3

#: marker origin kind for parameter-flow summaries
PARAM = "param"
SOURCE = "source"


@dataclass
class TaintOrigin:
    """Where a tainted value came from, with the hop chain to here."""

    kind: str  # SOURCE or PARAM
    description: str  # "time.time()" or the parameter name
    path: str  # repo-relative path of the source expression
    line: int
    #: interprocedural hops walked from the origin, oldest first:
    #: (path, line, "via repro.x.y.helper()")
    chain: List[Tuple[str, int, str]] = field(default_factory=list)

    def hopped(self, path: str, line: int, label: str) -> "TaintOrigin":
        return TaintOrigin(
            kind=self.kind,
            description=self.description,
            path=self.path,
            line=self.line,
            chain=self.chain + [(path, line, label)],
        )

    def describe_route(self) -> str:
        route = f"{self.description} at {self.path}:{self.line}"
        for path, line, label in self.chain:
            route += f" -> {label} ({path}:{line})"
        return route


@dataclass
class FunctionSummary:
    """What a function's return value carries."""

    #: source taint returned unconditionally of arguments
    returns: Optional[TaintOrigin] = None
    #: parameter names whose taint flows into the return value
    param_flow: Set[str] = field(default_factory=set)


class TaintEngine:
    """Taint queries over one :class:`ProjectModel`.

    *is_source* is the rule's policy hook: given the module and a Call
    node, return a short description ("time.time()") when the call
    produces nondeterministic data, else None.  The engine owns all
    propagation; the rule owns what counts as a source and a sink.
    """

    def __init__(
        self,
        project: ProjectModel,
        is_source: Callable[[object, ast.Call], Optional[str]],
    ) -> None:
        self.project = project
        self.is_source = is_source
        self._summaries: Dict[Tuple[str, int], FunctionSummary] = {}

    # -- summaries ----------------------------------------------------------

    def summary(self, qname: str, depth: int = MAX_DEPTH) -> FunctionSummary:
        """Memoised return-taint summary for *qname* at *depth*."""
        key = (qname, depth)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        self._summaries[key] = FunctionSummary()  # cycle guard: assume clean
        info = self.project.functions.get(qname)
        if info is None or depth <= 0:
            return self._summaries[key]
        env = self._param_env(info)
        env = self.reach(info, env, depth - 1)
        summary = FunctionSummary()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            origin = self.expr_taint(info, node.value, env, depth - 1)
            if origin is None:
                continue
            if origin.kind == PARAM:
                summary.param_flow.add(origin.description)
            elif summary.returns is None:
                summary.returns = origin
        self._summaries[key] = summary
        return summary

    def _param_env(self, info: FunctionInfo) -> Dict[str, TaintOrigin]:
        env: Dict[str, TaintOrigin] = {}
        args = info.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            env[arg.arg] = TaintOrigin(
                kind=PARAM,
                description=arg.arg,
                path=info.module.relpath,
                line=info.node.lineno,
            )
        return env

    # -- reaching definitions -----------------------------------------------

    def reach(
        self,
        info: FunctionInfo,
        initial: Optional[Dict[str, TaintOrigin]] = None,
        depth: int = MAX_DEPTH,
    ) -> Dict[str, TaintOrigin]:
        """Tainted locals at function exit: two forward passes with
        strong updates over the statement list in source order."""
        env: Dict[str, TaintOrigin] = dict(initial or {})
        for _ in range(2):  # second pass approximates loop back-edges
            self._walk_block(info, info.node.body, env, depth)
        return env

    def _walk_block(
        self,
        info: FunctionInfo,
        body: List[ast.stmt],
        env: Dict[str, TaintOrigin],
        depth: int,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                origin = self.expr_taint(info, stmt.value, env, depth)
                for target in stmt.targets:
                    self._bind(target, origin, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                origin = self.expr_taint(info, stmt.value, env, depth)
                self._bind(stmt.target, origin, env)
            elif isinstance(stmt, ast.AugAssign):
                origin = self.expr_taint(info, stmt.value, env, depth)
                if origin is not None:
                    self._bind(stmt.target, origin, env)
                # an untainted increment leaves existing taint in place
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                origin = self.expr_taint(info, stmt.iter, env, depth)
                self._bind(stmt.target, origin, env)
                self._walk_block(info, stmt.body, env, depth)
                self._walk_block(info, stmt.orelse, env, depth)
            elif isinstance(stmt, ast.While):
                self._walk_block(info, stmt.body, env, depth)
                self._walk_block(info, stmt.orelse, env, depth)
            elif isinstance(stmt, ast.If):
                # both branches' defs reach the join (may-taint union)
                then_env = dict(env)
                self._walk_block(info, stmt.body, then_env, depth)
                else_env = dict(env)
                self._walk_block(info, stmt.orelse, else_env, depth)
                for name in set(then_env) | set(else_env):
                    origin = then_env.get(name) or else_env.get(name)
                    if origin is not None:
                        env[name] = origin
                    else:
                        env.pop(name, None)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        origin = self.expr_taint(info, item.context_expr, env, depth)
                        self._bind(item.optional_vars, origin, env)
                self._walk_block(info, stmt.body, env, depth)
            elif isinstance(stmt, ast.Try):
                self._walk_block(info, stmt.body, env, depth)
                for handler in stmt.handlers:
                    self._walk_block(info, handler.body, env, depth)
                self._walk_block(info, stmt.orelse, env, depth)
                self._walk_block(info, stmt.finalbody, env, depth)
            # nested defs are separate scopes: their own summary covers them

    @staticmethod
    def _bind(
        target: ast.AST, origin: Optional[TaintOrigin], env: Dict[str, TaintOrigin]
    ) -> None:
        if isinstance(target, ast.Name):
            if origin is not None:
                env[target.id] = origin
            else:
                env.pop(target.id, None)  # strong update: clean def kills taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                TaintEngine._bind(element, origin, env)
        elif isinstance(target, ast.Starred):
            TaintEngine._bind(target.value, origin, env)
        # attribute/subscript stores tracked by the rule's sink logic

    # -- expression taint ---------------------------------------------------

    def expr_taint(
        self,
        info: FunctionInfo,
        node: Optional[ast.AST],
        env: Dict[str, TaintOrigin],
        depth: int = MAX_DEPTH,
    ) -> Optional[TaintOrigin]:
        """The origin a tainted expression carries, else None."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Call):
            return self._call_taint(info, node, env, depth)
        if isinstance(node, ast.Attribute):
            # attribute reads are untracked (self.* state is the race
            # rules' domain); but taint on the owner expression (e.g.
            # ``time.time().hex`` is unreachable syntax here) is kept
            return self.expr_taint(info, node.value, env, depth)
        if isinstance(node, ast.Lambda):
            return None
        # generic propagation: any tainted child taints the expression
        for child in ast.iter_child_nodes(node):
            origin = self.expr_taint(info, child, env, depth)
            if origin is not None:
                return origin
        return None

    def _call_taint(
        self,
        info: FunctionInfo,
        node: ast.Call,
        env: Dict[str, TaintOrigin],
        depth: int,
    ) -> Optional[TaintOrigin]:
        source = self.is_source(info.module, node)
        if source is not None:
            return TaintOrigin(
                kind=SOURCE,
                description=source,
                path=info.module.relpath,
                line=node.lineno,
            )
        callee = self.project.resolve_call(info, node)
        arg_taints: List[Tuple[Optional[str], TaintOrigin]] = []
        for index, arg in enumerate(node.args):
            origin = self.expr_taint(info, arg, env, depth)
            if origin is not None:
                arg_taints.append((self._param_name(callee, index), origin))
        for keyword in node.keywords:
            origin = self.expr_taint(info, keyword.value, env, depth)
            if origin is not None:
                arg_taints.append((keyword.arg, origin))
        if isinstance(callee, FunctionInfo) and depth > 0:
            summary = self.summary(callee.qname, depth)
            label = f"return of {callee.qname}()"
            if summary.returns is not None:
                return summary.returns.hopped(
                    info.module.relpath, node.lineno, label
                )
            for param, origin in arg_taints:
                if param is not None and param in summary.param_flow:
                    return origin.hopped(info.module.relpath, node.lineno, label)
            return None  # resolved callee proven clean at this depth
        if isinstance(callee, FunctionInfo):
            return None  # depth exhausted: treat as clean (bounded precision)
        # unknown callee (str, round, "".join, stdlib): a tainted
        # argument taints the result; method calls also propagate the
        # receiver's taint (tainted_list.copy())
        if arg_taints:
            return arg_taints[0][1]
        if isinstance(node.func, ast.Attribute):
            return self.expr_taint(info, node.func.value, env, depth)
        return None

    @staticmethod
    def _param_name(callee, index: int) -> Optional[str]:
        if not isinstance(callee, FunctionInfo):
            return None
        args = callee.node.args
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if names and names[0] in ("self", "cls") and callee.cls is not None:
            names = names[1:]
        if 0 <= index < len(names):
            return names[index]
        return None
