"""The grandfathered-findings baseline.

The baseline is a checked-in JSON file listing fingerprints of known,
accepted findings; the linter subtracts them from a run so CI fails
only on *new* violations.  Every entry carries a ``justification`` —
an empty justification is itself a lint failure, so nothing can be
grandfathered silently.

Format **v2** is line-number independent twice over: the fingerprint
hashes the whitespace-collapsed source snippet (not a line number),
and the entry records that ``snippet`` (not a ``line``) so the file
itself does not churn when unrelated edits shift code around.  A v1
file (strip-only normalization, ``line`` field) is migrated
transparently: v1 entries are matched against the current findings'
*legacy* fingerprints, and the next ``--update-baseline`` writes v2.

``python -m tools.mapitlint --update-baseline`` rewrites the file from
the current findings, preserving justifications for fingerprints that
survive.  Entries whose fingerprint no longer matches anything are
reported as stale (the violation was fixed — delete the entry).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from tools.mapitlint.findings import Finding, legacy_fingerprint, normalize_snippet

BASELINE_VERSION = 2


def default_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def load(path: Path) -> Tuple[Dict[str, Dict[str, str]], int]:
    """(fingerprint -> entry, format version); empty v2 when absent."""
    if not path.is_file():
        return {}, BASELINE_VERSION
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = {}
    for entry in data.get("entries", []):
        entries[entry["fingerprint"]] = entry
    return entries, int(data.get("version", 1))


def save(path: Path, findings: List[Finding], existing: Dict[str, Dict[str, str]]) -> None:
    """Write *findings* as a v2 baseline, keeping old justifications.

    *existing* must already be keyed by current fingerprints (the CLI
    migrates v1 keys before calling), so justifications survive both
    ordinary rewrites and the v1→v2 format migration.
    """
    entries = []
    for finding in findings:
        old = existing.get(finding.fingerprint, {})
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "snippet": normalize_snippet(finding.snippet),
                "message": finding.message,
                "justification": old.get("justification", ""),
            }
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def legacy_fingerprints(findings: List[Finding]) -> Dict[str, str]:
    """current fingerprint -> v1 fingerprint for every finding.

    Recomputes the v1 occurrence indices with v1's strip-only
    normalization, so a v1 baseline written by the old linter matches
    exactly the findings it used to match.
    """
    seen: Dict[tuple, int] = {}
    mapping: Dict[str, str] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        stripped = finding.snippet.strip()
        key = (finding.rule, finding.path, stripped)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        mapping[finding.fingerprint] = legacy_fingerprint(
            finding.rule, finding.path, finding.snippet, occurrence
        )
    return mapping


def migrate(
    findings: List[Finding], entries: Dict[str, Dict[str, str]], version: int
) -> Dict[str, Dict[str, str]]:
    """Re-key a v1 baseline by current fingerprints.

    Entries already matching a current fingerprint stay as-is; the
    rest are matched through the findings' legacy fingerprints.  A v1
    entry matching nothing either way is kept under its old key so it
    is reported stale rather than silently dropped.
    """
    if version >= BASELINE_VERSION:
        return entries
    legacy = legacy_fingerprints(findings)
    migrated: Dict[str, Dict[str, str]] = {}
    claimed = set()
    for current, old in legacy.items():
        if current in entries:
            migrated[current] = entries[current]
            claimed.add(current)
        elif old in entries:
            migrated[current] = dict(entries[old], fingerprint=current)
            claimed.add(old)
    for fingerprint, entry in entries.items():
        if fingerprint not in claimed and fingerprint not in migrated:
            migrated[fingerprint] = entry
    return migrated


def apply(
    findings: List[Finding], entries: Dict[str, Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]], List[Dict[str, str]]]:
    """Split findings by the baseline.

    Returns ``(new, grandfathered, stale_entries, unjustified_entries)``:
    findings not in the baseline, findings matched by it, baseline
    entries matching nothing, and matched entries whose justification
    is empty (treated as failures by the CLI).
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = entries.get(finding.fingerprint)
        if entry is None:
            new.append(finding)
        else:
            grandfathered.append(finding)
            matched.add(finding.fingerprint)
    stale = [
        entry
        for fingerprint, entry in sorted(entries.items())
        if fingerprint not in matched
    ]
    unjustified = [
        entries[fingerprint]
        for fingerprint in sorted(matched)
        if not entries[fingerprint].get("justification", "").strip()
    ]
    return new, grandfathered, stale, unjustified
