"""The grandfathered-findings baseline.

The baseline is a checked-in JSON file listing fingerprints of known,
accepted findings; the linter subtracts them from a run so CI fails
only on *new* violations.  Every entry carries a ``justification`` —
an empty justification is itself a lint failure, so nothing can be
grandfathered silently.

``python -m tools.mapitlint --update-baseline`` rewrites the file from
the current findings, preserving justifications for fingerprints that
survive.  Entries whose fingerprint no longer matches anything are
reported as stale (the violation was fixed — delete the entry).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from tools.mapitlint.findings import Finding

BASELINE_VERSION = 1


def default_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def load(path: Path) -> Dict[str, Dict[str, str]]:
    """fingerprint -> entry dict; empty when the file does not exist."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = {}
    for entry in data.get("entries", []):
        entries[entry["fingerprint"]] = entry
    return entries


def save(path: Path, findings: List[Finding], existing: Dict[str, Dict[str, str]]) -> None:
    """Write *findings* as the new baseline, keeping old justifications."""
    entries = []
    for finding in findings:
        old = existing.get(finding.fingerprint, {})
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "justification": old.get("justification", ""),
            }
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply(
    findings: List[Finding], entries: Dict[str, Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]], List[Dict[str, str]]]:
    """Split findings by the baseline.

    Returns ``(new, grandfathered, stale_entries, unjustified_entries)``:
    findings not in the baseline, findings matched by it, baseline
    entries matching nothing, and matched entries whose justification
    is empty (treated as failures by the CLI).
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = entries.get(finding.fingerprint)
        if entry is None:
            new.append(finding)
        else:
            grandfathered.append(finding)
            matched.add(finding.fingerprint)
    stale = [
        entry
        for fingerprint, entry in sorted(entries.items())
        if fingerprint not in matched
    ]
    unjustified = [
        entries[fingerprint]
        for fingerprint in sorted(matched)
        if not entries[fingerprint].get("justification", "").strip()
    ]
    return new, grandfathered, stale, unjustified
