"""Entry point for ``python -m tools.mapitlint``."""

import sys

from tools.mapitlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
