"""Scan orchestration: file collection, parsing, pragmas, suppression.

The engine walks the requested paths, parses every ``*.py`` file into a
:class:`ModuleInfo` (source text, split lines, AST, repo-relative
path), runs each enabled rule's hooks, and then applies the two
suppression layers:

1. **Pragmas** — ``# mapitlint: disable=RULE[,RULE]`` (or ``=all``) on
   the offending line — or on a comment-only line immediately above
   it — suppresses matching findings on that line;
   ``# mapitlint: disable-file=RULE[,RULE]`` anywhere in a file
   suppresses the whole file.  Text after ``--`` in the comment is the
   human justification and is ignored by the parser.
2. **Baseline** — grandfathered fingerprints loaded from the checked-in
   baseline file (see :mod:`tools.mapitlint.baseline`).

Everything downstream (text/JSON output, exit codes) lives in
:mod:`tools.mapitlint.cli`.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.mapitlint.findings import Finding, assign_fingerprints, sort_findings
from tools.mapitlint.registry import Rule, all_rules, known_ids

PRAGMA = re.compile(
    r"#\s*mapitlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+?|all)\s*(?:--|$)"
)

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".venv", "venv", "node_modules"}


@dataclass
class ModuleInfo:
    """One parsed Python source file."""

    path: Path  # absolute
    relpath: str  # repo-relative posix path ("src/repro/core/add.py")
    text: str
    lines: List[str]
    tree: ast.Module
    #: line number -> set of rule ids disabled on that line ({"all"} wildcard)
    line_pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file ({"all"} wildcard)
    file_pragmas: Set[str] = field(default_factory=set)
    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """child -> parent over the whole tree (built lazily, cached)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_pragmas & {rule_id, "all"}:
            return True
        pragmas = self.line_pragmas.get(line, ())
        return bool(set(pragmas) & {rule_id, "all"})


@dataclass
class LintContext:
    """Shared state handed to every rule hook."""

    root: Path  # repo root, for doc lookups by cross-file rules
    modules: List[ModuleInfo] = field(default_factory=list)
    _project: Optional[object] = None

    def project(self):
        """The whole-program model over every scanned module, built
        lazily on first use and shared by all project-level rules."""
        if self._project is None:
            from tools.mapitlint.project import build_project

            self._project = build_project(self)
        return self._project

    def module(self, relpath_suffix: str) -> Optional[ModuleInfo]:
        """The scanned module whose relpath ends with *relpath_suffix*."""
        for module in self.modules:
            if module.relpath.endswith(relpath_suffix):
                return module
        return None

    def doc_text(self, relpath: str) -> Optional[str]:
        """The text of a repo doc, or None when it does not exist."""
        path = self.root / relpath
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


def parse_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract line-level and file-level pragmas from source lines."""
    line_pragmas: Dict[int, Set[str]] = {}
    file_pragmas: Set[str] = set()
    for number, line in enumerate(lines, start=1):
        match = PRAGMA.search(line)
        if not match:
            continue
        kind, raw = match.groups()
        rules = {part.strip() for part in raw.split(",") if part.strip()}
        if "all" in {rule.lower() for rule in rules}:
            rules = {"all"}
        else:
            rules = {rule.upper() for rule in rules}
        if kind == "disable-file":
            file_pragmas |= rules
        elif line.lstrip().startswith("#"):
            # comment-only pragma line: governs the next line
            line_pragmas.setdefault(number + 1, set()).update(rules)
        else:
            line_pragmas.setdefault(number, set()).update(rules)
    return line_pragmas, file_pragmas


def _extend_decorator_pragmas(
    tree: ast.Module, line_pragmas: Dict[int, Set[str]]
) -> None:
    """A pragma on (or above) a decorator also governs the ``def`` line.

    Decorated functions put their findings on the ``def`` line while
    the natural place to write the pragma is next to the decorator —
    honour both spellings by copying decorator-range pragmas down.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if not node.decorator_list:
            continue
        first = min(dec.lineno for dec in node.decorator_list)
        for line in range(first, node.lineno):
            rules = line_pragmas.get(line)
            if rules:
                line_pragmas.setdefault(node.lineno, set()).update(rules)


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse *path* into a :class:`ModuleInfo` (raises SyntaxError)."""
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    tree = ast.parse(text, filename=str(path))
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    line_pragmas, file_pragmas = parse_pragmas(lines)
    _extend_decorator_pragmas(tree, line_pragmas)
    return ModuleInfo(
        path=path,
        relpath=relpath,
        text=text,
        lines=lines,
        tree=tree,
        line_pragmas=line_pragmas,
        file_pragmas=file_pragmas,
    )


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand *paths* into a sorted, de-duplicated list of ``*.py`` files."""
    files: Set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            # mapitlint: disable=DET001 -- accumulated into a set and sorted below
            for candidate in path.rglob("*.py"):
                if any(part in SKIP_DIRS for part in candidate.parts):
                    continue
                files.add(candidate)
    return sorted(files)


def _validate_pragmas(ctx: LintContext, errors: List[str]) -> None:
    """A pragma naming a rule id that does not exist is a scan error.

    A typo in a pragma would otherwise suppress nothing while *looking*
    suppressed — the worst failure mode a linter can have — so unknown
    ids are reported loudly instead of silently accepted.
    """
    known = set(known_ids()) | {"all"}
    for module in ctx.modules:
        for line in sorted(module.line_pragmas):
            for rule_id in sorted(module.line_pragmas[line] - known):
                errors.append(
                    f"{module.relpath}:{line}: unknown rule id {rule_id!r} "
                    "in mapitlint pragma (see --list-rules)"
                )
        for rule_id in sorted(module.file_pragmas - known):
            errors.append(
                f"{module.relpath}: unknown rule id {rule_id!r} in "
                "mapitlint disable-file pragma (see --list-rules)"
            )


def run_lint(
    paths: Sequence[Path],
    root: Path,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    changed: Optional[Set[str]] = None,
    timings: Optional[Dict[str, float]] = None,
) -> Tuple[List[Finding], List[str], int]:
    """Run every enabled rule over *paths*.

    Returns ``(findings, errors, scanned)`` where *errors* are
    human-readable scan problems (unreadable or syntactically invalid
    files, pragmas naming unknown rules) and *scanned* is the number of
    files parsed.  The findings are pragma-filtered, fingerprinted, and
    sorted; baseline subtraction is the caller's job.

    *changed* (repo-relative posix paths) keeps only findings in those
    files — applied *after* fingerprinting over the full run, so the
    retained findings carry exactly the fingerprints a full run
    assigns (occurrence indices depend on the complete finding list).
    Every requested file is still parsed either way: the whole-program
    rules need the full project model to judge any single file.

    *timings*, when given, is filled with per-rule wall milliseconds —
    the CI signal that a rule's analysis cost regressed.
    """
    ctx = LintContext(root=root)
    errors: List[str] = []
    for path in collect_files(paths):
        try:
            ctx.modules.append(load_module(path, root))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: {type(exc).__name__}: {exc}")
    _validate_pragmas(ctx, errors)

    selected = {rule.upper() for rule in select} if select else None
    disabled = {rule.upper() for rule in disable} if disable else set()
    rules: List[Rule] = []
    for rule_class in all_rules():
        if selected is not None and rule_class.rule_id not in selected:
            continue
        if rule_class.rule_id in disabled:
            continue
        rules.append(rule_class())

    findings: List[Finding] = []
    for rule in rules:
        started = time.perf_counter()
        for module in ctx.modules:
            for finding in rule.check_module(module, ctx):
                if not finding.snippet:
                    finding.snippet = module.line_text(finding.line)
                if not module.suppressed(rule.rule_id, finding.line):
                    findings.append(finding)
        for finding in rule.check_project(ctx):
            module = ctx.module(finding.path) if finding.path else None
            if module is not None:
                if not finding.snippet:
                    finding.snippet = module.line_text(finding.line)
                if module.suppressed(rule.rule_id, finding.line):
                    continue
            findings.append(finding)
        if timings is not None:
            timings[rule.rule_id] = (time.perf_counter() - started) * 1000.0

    assign_fingerprints(findings)
    if changed is not None:
        findings = [finding for finding in findings if finding.path in changed]
    return sort_findings(findings), errors, len(ctx.modules)
