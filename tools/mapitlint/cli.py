"""Command-line front end: ``python -m tools.mapitlint [paths ...]``.

Exit codes: 0 clean (modulo baseline), 1 findings (new findings, an
unjustified or stale baseline entry, or a scan error), 2 usage error.
``--format json`` emits one machine-readable document on stdout for
CI artifact collection.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.mapitlint import baseline as baseline_mod
from tools.mapitlint.engine import run_lint
from tools.mapitlint.registry import all_rules, known_ids


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.mapitlint",
        description=(
            "AST-based invariant checker for MAP-IT: determinism, "
            "fork-safety, error hygiene, and docs/code sync"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for doc lookups (default: autodetected)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: tools/mapitlint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.rule_id}  {rule_class.name}: {rule_class.description}")
        return 0

    root = Path(args.root).resolve() if args.root else repo_root()
    select = _split_ids(args.select)
    disable = _split_ids(args.disable)
    known = set(known_ids())
    for rule_id in (select or []) + (disable or []):
        if rule_id.upper() not in known:
            parser.error(f"unknown rule id {rule_id!r} (known: {', '.join(sorted(known))})")

    raw_paths = args.paths or ["src"]
    paths = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            parser.error(f"no such path: {raw}")
        paths.append(path)

    findings, errors, scanned = run_lint(paths, root, select=select, disable=disable)

    baseline_path = (
        Path(args.baseline).resolve() if args.baseline else baseline_mod.default_path()
    )
    entries = {} if args.no_baseline else baseline_mod.load(baseline_path)

    if args.update_baseline:
        baseline_mod.save(baseline_path, findings, entries)
        print(f"baseline updated: {len(findings)} finding(s) -> {baseline_path}")
        if findings:
            print("fill in every empty justification before committing")
        return 0

    new, grandfathered, stale, unjustified = baseline_mod.apply(findings, entries)

    if args.format == "json":
        document = {
            "findings": [finding.to_dict() for finding in new],
            "grandfathered": [finding.to_dict() for finding in grandfathered],
            "stale_baseline": stale,
            "unjustified_baseline": unjustified,
            "errors": errors,
            "summary": {
                "new": len(new),
                "grandfathered": len(grandfathered),
                "stale": len(stale),
                "unjustified": len(unjustified),
                "scanned": scanned,
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for error in errors:
            print(f"ERROR: {error}")
        for finding in new:
            print(finding)
        for entry in stale:
            print(
                f"STALE BASELINE: {entry['fingerprint']} ({entry['rule']} "
                f"{entry['path']}) matches nothing - delete the entry"
            )
        for entry in unjustified:
            print(
                f"UNJUSTIFIED BASELINE: {entry['fingerprint']} ({entry['rule']} "
                f"{entry['path']}) needs a justification"
            )
        if new or stale or unjustified or errors:
            print(
                f"mapitlint: {len(new)} new finding(s), {len(stale)} stale and "
                f"{len(unjustified)} unjustified baseline entr(ies), "
                f"{len(errors)} scan error(s)"
            )
        else:
            suffix = f" ({len(grandfathered)} grandfathered)" if grandfathered else ""
            print(f"mapitlint: clean{suffix}")

    if new or stale or unjustified or errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
