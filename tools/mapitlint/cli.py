"""Command-line front end: ``python -m tools.mapitlint [paths ...]``.

Exit codes: 0 clean (modulo baseline), 1 findings (new findings, an
unjustified or stale baseline entry, or a scan error), 2 usage error.
``--format json`` emits one machine-readable document on stdout for
CI artifact collection.

``--changed`` narrows the *report* to files that differ from the git
merge base (plus uncommitted and untracked files) while still parsing
the whole project — the race/taint rules need every module to judge
any one of them — so a ``--changed`` run agrees exactly with the
full run on the files it reports.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

from tools.mapitlint import baseline as baseline_mod
from tools.mapitlint.engine import run_lint
from tools.mapitlint.registry import all_rules, known_ids


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.mapitlint",
        description=(
            "AST-based invariant checker for MAP-IT: determinism, "
            "fork-safety, thread-role races, error hygiene, and "
            "docs/code sync"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: src tools)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for doc lookups (default: autodetected)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: tools/mapitlint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only findings in files changed since the git merge "
            "base (whole project is still analyzed)"
        ),
    )
    parser.add_argument(
        "--changed-base",
        default="origin/main",
        metavar="REF",
        help="ref to diff against for --changed (default: origin/main)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-rule wall time (always present in --format json)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _git_lines(root: Path, *argv: str) -> List[str]:
    out = subprocess.run(
        ["git", "-C", str(root), *argv],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return [line for line in out.splitlines() if line.strip()]


def changed_files(root: Path, base: str) -> Set[str]:
    """Repo-relative posix paths of ``*.py`` files changed vs *base*.

    Diffs against ``merge-base(base, HEAD)`` (falling back to *base*
    itself when the merge base cannot be computed, e.g. unrelated
    histories), then adds untracked files so a brand-new module is
    linted before its first commit.
    """
    try:
        merge_base = _git_lines(root, "merge-base", base, "HEAD")[0]
    except (subprocess.CalledProcessError, IndexError):
        merge_base = base
    names = _git_lines(root, "diff", "--name-only", merge_base)
    names += _git_lines(root, "ls-files", "--others", "--exclude-standard")
    return {name for name in names if name.endswith(".py")}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.rule_id}  {rule_class.name}: {rule_class.description}")
        return 0

    if args.update_baseline and args.changed:
        parser.error("--update-baseline needs the full finding set; drop --changed")

    root = Path(args.root).resolve() if args.root else repo_root()
    select = _split_ids(args.select)
    disable = _split_ids(args.disable)
    known = set(known_ids())
    for rule_id in (select or []) + (disable or []):
        if rule_id.upper() not in known:
            parser.error(f"unknown rule id {rule_id!r} (known: {', '.join(sorted(known))})")

    raw_paths = args.paths or ["src", "tools"]
    paths = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            parser.error(f"no such path: {raw}")
        paths.append(path)

    changed: Optional[Set[str]] = None
    if args.changed:
        try:
            changed = changed_files(root, args.changed_base)
        except (OSError, subprocess.CalledProcessError) as exc:
            parser.error(f"--changed requires a working git repo: {exc}")

    timings: Dict[str, float] = {}
    findings, errors, scanned = run_lint(
        paths, root, select=select, disable=disable, changed=changed, timings=timings
    )

    baseline_path = (
        Path(args.baseline).resolve() if args.baseline else baseline_mod.default_path()
    )
    if args.no_baseline:
        entries: Dict[str, Dict[str, str]] = {}
    else:
        entries, version = baseline_mod.load(baseline_path)
        entries = baseline_mod.migrate(findings, entries, version)

    if args.update_baseline:
        baseline_mod.save(baseline_path, findings, entries)
        print(f"baseline updated: {len(findings)} finding(s) -> {baseline_path}")
        if findings:
            print("fill in every empty justification before committing")
        return 0

    new, grandfathered, stale, unjustified = baseline_mod.apply(findings, entries)
    if changed is not None:
        # A --changed run only sees a slice of the findings, so a
        # baseline entry matching nothing proves nothing — stale
        # detection belongs to full runs.
        stale = []

    if args.format == "json":
        document = {
            "findings": [finding.to_dict() for finding in new],
            "grandfathered": [finding.to_dict() for finding in grandfathered],
            "stale_baseline": stale,
            "unjustified_baseline": unjustified,
            "errors": errors,
            "summary": {
                "new": len(new),
                "grandfathered": len(grandfathered),
                "stale": len(stale),
                "unjustified": len(unjustified),
                "scanned": scanned,
                "changed_only": changed is not None,
                "rule_timings_ms": {
                    rule: round(ms, 3) for rule, ms in sorted(timings.items())
                },
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for error in errors:
            print(f"ERROR: {error}")
        for finding in new:
            print(finding)
        for entry in stale:
            print(
                f"STALE BASELINE: {entry['fingerprint']} ({entry['rule']} "
                f"{entry['path']}) matches nothing - delete the entry"
            )
        for entry in unjustified:
            print(
                f"UNJUSTIFIED BASELINE: {entry['fingerprint']} ({entry['rule']} "
                f"{entry['path']}) needs a justification"
            )
        if args.timings:
            for rule, ms in sorted(timings.items(), key=lambda kv: -kv[1]):
                print(f"TIMING: {rule} {ms:.1f} ms")
        if new or stale or unjustified or errors:
            print(
                f"mapitlint: {len(new)} new finding(s), {len(stale)} stale and "
                f"{len(unjustified)} unjustified baseline entr(ies), "
                f"{len(errors)} scan error(s)"
            )
        else:
            suffix = f" ({len(grandfathered)} grandfathered)" if grandfathered else ""
            print(f"mapitlint: clean{suffix}")

    if new or stale or unjustified or errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
