"""The whole-program model: symbols, imports, calls, types, thread roles.

Per-file AST rules can check local shape; the invariants PR 8's serve
daemon actually depends on are *relational*: which thread runs this
function, what type flows out of that worker, where does this value
end up.  :class:`ProjectModel` answers those questions over every
module the engine scanned:

* a **symbol table** — every module-level class and function, keyed by
  dotted name (``repro.serve.daemon.ServeDaemon.quiesce``), with each
  class's base names, methods, and inferred attribute types (from
  ``__init__`` assignments, annotated parameters, and class-level
  annotations);
* an **import graph** — per-module local-name → dotted-target maps, so
  ``ServeDaemon`` in one file resolves to the class defined in
  another;
* a **call graph** — caller → resolved callee edges, including method
  calls through inferred receiver types (``self.daemon.quiesce()``);
* **thread roles** — entry points that run concurrently with the main
  thread (``threading.Thread(target=...)`` targets, ``do_*`` methods
  of ``BaseHTTPRequestHandler`` subclasses, ``signal.signal``
  handlers) and everything reachable from them within a bounded number
  of call levels.

Everything here is deliberately *bounded and heuristic* — no fixpoint
iteration, no alias analysis.  Precision over completeness: a relation
the model cannot resolve is dropped, never guessed, so rules built on
it stay low-noise and suppressible (docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: call-graph depth for thread-role reachability (the pump → quiesce
#: and handler → API → daemon chains are 3 edges deep; one for margin)
ROLE_DEPTH = 4

#: stdlib synchronisation types whose methods are safe from any thread
SYNC_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "queue.Queue",
    "queue.SimpleQueue",
}

#: the two names that make an attribute a lock guard
LOCK_TYPES = {"threading.Lock", "threading.RLock"}

#: method names that mutate a builtin container in place
MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse", "__setitem__", "put", "put_nowait",
}


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_dotted_name(relpath: str) -> str:
    """``src/repro/serve/daemon.py`` → ``repro.serve.daemon``."""
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qname: str  # dotted: repro.serve.daemon.ServeDaemon.quiesce
    module: object  # engine.ModuleInfo (duck-typed to avoid the import)
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    #: parameter name -> resolved annotation qname (or None)
    param_types: Dict[str, Optional[str]] = field(default_factory=dict)
    return_type: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One module-level class."""

    qname: str
    module: object
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # resolved base qnames
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> resolved type qname / builtin tag ("dict", ...)
    attr_types: Dict[str, Optional[str]] = field(default_factory=dict)
    is_dataclass: bool = False
    #: dataclass field name -> annotation AST node (declaration order)
    fields: Dict[str, ast.AST] = field(default_factory=dict)
    field_lines: Dict[str, int] = field(default_factory=dict)

    def inherits(self, base_suffix: str, project: "ProjectModel", depth: int = 3) -> bool:
        """True when any (transitive, bounded) base name ends with
        *base_suffix* — matches both resolved project classes and
        unresolved stdlib names like ``BaseHTTPRequestHandler``."""
        if depth <= 0:
            return False
        for base in self.bases:
            if base.split(".")[-1] == base_suffix:
                return True
            parent = project.classes.get(base)
            if parent is not None and parent.inherits(base_suffix, project, depth - 1):
                return True
        return False

    def method(self, name: str, project: "ProjectModel", depth: int = 3) -> Optional[FunctionInfo]:
        """Look *name* up on this class, then (bounded) on its bases."""
        if name in self.methods:
            return self.methods[name]
        if depth <= 0:
            return None
        for base in self.bases:
            parent = project.classes.get(base)
            if parent is not None:
                found = parent.method(name, project, depth - 1)
                if found is not None:
                    return found
        return None


@dataclass
class Role:
    """One source of concurrency: a thread entry and what it reaches."""

    role_id: str  # "thread:src/repro/cli.py:600", "handler:...", "signal:..."
    kind: str  # "thread" | "handler" | "signal"
    #: qnames of functions this role executes (entry + bounded closure)
    functions: Set[str] = field(default_factory=set)
    #: True when many instances of this role run concurrently with each
    #: other (HTTP handler threads; Thread() constructed inside a loop)
    multi: bool = False
    #: the class owning the entry point (its own instance attributes
    #: are per-thread for single-receiver roles)
    entry_class: Optional[str] = None


class ProjectModel:
    """Whole-program facts over one scanned module set."""

    def __init__(self, modules: Sequence[object]) -> None:
        self.modules = list(modules)
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module relpath -> {local name -> dotted target}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module relpath -> dotted module name
        self.module_names: Dict[str, str] = {}
        self._calls: Optional[Dict[str, Set[str]]] = None
        self._roles: Optional[List[Role]] = None
        self._mutating: Dict[str, bool] = {}
        self._analysis_cache: Dict[str, object] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        for module in self.modules:
            dotted = module_dotted_name(module.relpath)
            self.module_names[module.relpath] = dotted
            self.imports[module.relpath] = self._import_map(module, dotted)
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{dotted}.{stmt.name}" if dotted else stmt.name
                    self.functions[qname] = FunctionInfo(qname, module, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    qname = f"{dotted}.{stmt.name}" if dotted else stmt.name
                    self.classes[qname] = self._class_info(module, stmt, qname)
        # second pass: resolve bases, annotations, and attribute types
        # (every symbol must exist before anything is resolved)
        for info in self.classes.values():
            info.bases = [
                resolved
                for base in info.node.bases
                for resolved in [self.resolve_name(info.module, _dotted(base) or "")]
                if resolved
            ]
        for info in self.classes.values():
            for method in info.methods.values():
                self._annotate_function(method)
        for info in self.functions.values():
            self._annotate_function(info)
        # attr inference reads __init__ param_types, so it runs last
        for info in self.classes.values():
            self._infer_attr_types(info)

    def _import_map(self, module, dotted: str) -> Dict[str, str]:
        package = dotted.rsplit(".", 1)[0] if "." in dotted else ""
        imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = dotted.split(".")[: -node.level]
                    base = ".".join(prefix_parts + ([base] if base else []))
                    _ = package  # relative imports resolve against the module path
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = f"{base}.{alias.name}" if base else alias.name
        return imports

    def _class_info(self, module, node: ast.ClassDef, qname: str) -> ClassInfo:
        info = ClassInfo(qname=qname, module=module, node=node)
        for decorator in node.decorator_list:
            name = _dotted(decorator) or _dotted(getattr(decorator, "func", decorator))
            if name and name.split(".")[-1] == "dataclass":
                info.is_dataclass = True
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(f"{qname}.{stmt.name}", module, stmt, cls=info)
                info.methods[stmt.name] = method
                self.functions[method.qname] = method
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                info.fields[stmt.target.id] = stmt.annotation
                info.field_lines[stmt.target.id] = stmt.lineno
        return info

    def _annotate_function(self, info: FunctionInfo) -> None:
        args = info.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                info.param_types[arg.arg] = self._resolve_annotation(
                    info.module, arg.annotation
                )
            else:
                info.param_types.setdefault(arg.arg, None)
        if info.node.returns is not None:
            info.return_type = self._resolve_annotation(info.module, info.node.returns)

    def _resolve_annotation(self, module, node: ast.AST) -> Optional[str]:
        """Resolve an annotation to a qname, unwrapping Optional[...]."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = _dotted(node.value)
            if head and head.split(".")[-1] == "Optional":
                return self._resolve_annotation(module, node.slice)
            return None  # containers resolve per-rule, not here
        name = _dotted(node)
        if not name:
            return None
        return self.resolve_name(module, name)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        # class-level annotations first (e.g. ``api: QueryAPI``)
        for attr, annotation in info.fields.items():
            info.attr_types[attr] = self._resolve_annotation(info.module, annotation)
        init = info.methods.get("__init__")
        if init is None:
            return
        for stmt in ast.walk(init.node):
            target = None
            value = None
            annotation = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                resolved = self._resolve_annotation(info.module, annotation)
                if resolved is None:
                    resolved = self._builtin_kind(annotation)
                info.attr_types.setdefault(attr, None)
                if resolved is not None:
                    info.attr_types[attr] = resolved
                continue
            if attr in info.attr_types and info.attr_types[attr] is not None:
                continue
            info.attr_types[attr] = self._infer_expr_type_in(init, value)

    def _builtin_kind(self, node: ast.AST) -> Optional[str]:
        name = _dotted(node)
        if isinstance(node, ast.Subscript):
            name = _dotted(node.value)
        if not name:
            return None
        tail = name.split(".")[-1]
        return {
            "Dict": "dict", "dict": "dict", "List": "list", "list": "list",
            "Set": "set", "set": "set", "Deque": "deque", "deque": "deque",
            "int": "int", "str": "str", "float": "float", "bool": "bool",
            "bytes": "bytes",
        }.get(tail)

    # -- resolution ---------------------------------------------------------

    def resolve_name(self, module, dotted: str) -> Optional[str]:
        """Resolve a source-level dotted name to a project/stdlib qname."""
        if not dotted:
            return None
        parts = dotted.split(".")
        imports = self.imports.get(module.relpath, {})
        head = parts[0]
        if head in imports:
            full = ".".join([imports[head]] + parts[1:])
        else:
            module_name = self.module_names.get(module.relpath, "")
            full = f"{module_name}.{dotted}" if module_name else dotted
            if full not in self.classes and full not in self.functions:
                # not module-local: keep the raw spelling (stdlib names
                # like threading.Lock resolve through this path)
                full = dotted
        return full

    def lookup(self, qname: Optional[str]):
        """The ClassInfo/FunctionInfo a qname denotes, else None."""
        if qname is None:
            return None
        if qname in self.classes:
            return self.classes[qname]
        if qname in self.functions:
            return self.functions[qname]
        return None

    def class_of(self, qname: Optional[str]) -> Optional[ClassInfo]:
        entry = self.lookup(qname)
        return entry if isinstance(entry, ClassInfo) else None

    # -- expression typing --------------------------------------------------

    def local_types(self, info: FunctionInfo) -> Dict[str, Optional[str]]:
        """name -> type qname for a function's locals (single pass)."""
        key = f"locals:{info.qname}"
        cached = self._analysis_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        env: Dict[str, Optional[str]] = dict(info.param_types)
        if info.cls is not None:
            env["self"] = info.cls.qname
            env["cls"] = info.cls.qname
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    env[target.id] = self._type_of(info, stmt.value, env)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id not in env:
                    env[stmt.target.id] = self._resolve_annotation(
                        info.module, stmt.annotation
                    )
        self._analysis_cache[key] = env
        return env

    def _infer_expr_type_in(self, info: FunctionInfo, node: Optional[ast.AST]):
        env: Dict[str, Optional[str]] = dict(info.param_types)
        if info.cls is not None:
            env["self"] = info.cls.qname
        return self._type_of(info, node, env)

    def _type_of(
        self, info: FunctionInfo, node: Optional[ast.AST], env: Dict[str, Optional[str]]
    ) -> Optional[str]:
        """Bounded expression typing; None when unknown."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, int):
                return "int"
            if isinstance(value, str):
                return "str"
            if isinstance(value, bytes):
                return "bytes"
            if isinstance(value, float):
                return "float"
            return None
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Attribute):
            owner = self._type_of(info, node.value, env)
            owner_class = self.class_of(owner)
            if owner_class is not None:
                return owner_class.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            callee = self.resolve_call(info, node, env)
            if isinstance(callee, ClassInfo):
                return callee.qname
            if isinstance(callee, FunctionInfo):
                return callee.return_type
            raw = _dotted(node.func)
            if raw:
                resolved = self.resolve_name(info.module, raw)
                if resolved in SYNC_TYPES or resolved in LOCK_TYPES:
                    return resolved
                tail = (resolved or raw).split(".")[-1]
                if tail in ("dict", "list", "set", "deque", "defaultdict", "Counter"):
                    return "deque" if tail == "deque" else tail
            return None
        return None

    def expr_type(
        self, info: FunctionInfo, node: Optional[ast.AST], env=None
    ) -> Optional[str]:
        """Public typing entry point for rules."""
        if env is None:
            env = self.local_types(info)
        return self._type_of(info, node, env)

    def resolve_call(self, info: FunctionInfo, node: ast.Call, env=None):
        """The ClassInfo/FunctionInfo a call dispatches to, else None."""
        if env is None:
            env = self.local_types(info)
        func = node.func
        if isinstance(func, ast.Name):
            return self.lookup(self.resolve_name(info.module, func.id))
        if isinstance(func, ast.Attribute):
            # classmethod-style Class.method or module.attr chains
            raw = _dotted(func)
            if raw:
                resolved = self.lookup(self.resolve_name(info.module, raw))
                if resolved is not None:
                    return resolved
            owner = self._type_of(info, func.value, env)
            owner_class = self.class_of(owner)
            if owner_class is not None:
                method = owner_class.method(func.attr, self)
                if method is not None:
                    return method
        return None

    def resolve_callable_ref(self, info: FunctionInfo, node: ast.AST):
        """Resolve a *reference* to a callable (a Thread target, a
        worker handed to fork_map) without calling it."""
        env = self.local_types(info)
        if isinstance(node, ast.Name):
            resolved = self.lookup(self.resolve_name(info.module, node.id))
            if resolved is not None:
                return resolved
            # nested function defined in this scope: no project symbol
            return None
        if isinstance(node, ast.Attribute):
            raw = _dotted(node)
            if raw:
                resolved = self.lookup(self.resolve_name(info.module, raw))
                if resolved is not None:
                    return resolved
            owner = self._type_of(info, node.value, env)
            owner_class = self.class_of(owner)
            if owner_class is not None:
                return owner_class.method(node.attr, self)
        return None

    # -- call graph ---------------------------------------------------------

    def call_graph(self) -> Dict[str, Set[str]]:
        """caller qname -> set of resolved callee qnames."""
        if self._calls is not None:
            return self._calls
        edges: Dict[str, Set[str]] = {}
        for info in self.functions.values():
            callees: Set[str] = set()
            env = self.local_types(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(info, node, env)
                if isinstance(callee, FunctionInfo):
                    callees.add(callee.qname)
                elif isinstance(callee, ClassInfo):
                    init = callee.method("__init__", self)
                    if init is not None:
                        callees.add(init.qname)
            edges[info.qname] = callees
        self._calls = edges
        return edges

    def reachable(self, entries: Sequence[str], depth: int = ROLE_DEPTH) -> Set[str]:
        """Functions reachable from *entries* within *depth* call edges."""
        edges = self.call_graph()
        seen: Set[str] = set(entries)
        frontier = set(entries)
        for _ in range(depth):
            next_frontier: Set[str] = set()
            for qname in frontier:
                for callee in edges.get(qname, ()):
                    if callee not in seen:
                        seen.add(callee)
                        next_frontier.add(callee)
            if not next_frontier:
                break
            frontier = next_frontier
        return seen

    # -- thread roles -------------------------------------------------------

    def roles(self) -> List[Role]:
        """Every inferred concurrency role, with its bounded closure."""
        if self._roles is not None:
            return self._roles
        roles: List[Role] = []
        for module in self.modules:
            parents = module.parent_map()
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                raw = _dotted(node.func) or ""
                resolved = self.resolve_name(module, raw) or raw
                if resolved.split(".")[-1] == "Thread" and (
                    resolved.startswith("threading") or raw == "Thread"
                ):
                    role = self._thread_role(module, node, parents)
                    if role is not None:
                        roles.append(role)
                elif resolved in ("signal.signal", "signal.setitimer") or raw in (
                    "signal.signal",
                ):
                    role = self._signal_role(module, node)
                    if role is not None:
                        roles.append(role)
        for info in self.classes.values():
            if info.inherits("BaseHTTPRequestHandler", self):
                entries = [m.qname for m in info.methods.values()]
                role = Role(
                    role_id=f"handler:{info.qname}",
                    kind="handler",
                    multi=True,
                    entry_class=info.qname,
                )
                role.functions = self.reachable(entries)
                roles.append(role)
        self._roles = roles
        return roles

    def _enclosing_function(self, module, node: ast.AST) -> Optional[FunctionInfo]:
        parents = module.parent_map()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for info in self.functions.values():
                    if info.node is current and info.module is module:
                        return info
                return None
            current = parents.get(current)
        return None

    def _in_loop(self, module, node: ast.AST) -> bool:
        parents = module.parent_map()
        current = parents.get(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(current, (ast.For, ast.While, ast.AsyncFor)):
                return True
            current = parents.get(current)
        return False

    def _thread_role(self, module, node: ast.Call, parents) -> Optional[Role]:
        target = None
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None and node.args:
            target = node.args[0]
        if target is None:
            return None
        caller = self._enclosing_function(module, node)
        if caller is None:
            return None
        resolved = self.resolve_callable_ref(caller, target)
        role = Role(
            role_id=f"thread:{module.relpath}:{node.lineno}",
            kind="thread",
            multi=self._in_loop(module, node),
        )
        if isinstance(resolved, FunctionInfo):
            role.functions = self.reachable([resolved.qname])
            if resolved.cls is not None:
                role.entry_class = resolved.cls.qname
        return role

    def _signal_role(self, module, node: ast.Call) -> Optional[Role]:
        if len(node.args) < 2:
            return None
        handler = node.args[1]
        caller = self._enclosing_function(module, node)
        if caller is None:
            return None
        resolved = self.resolve_callable_ref(caller, handler)
        if not isinstance(resolved, FunctionInfo):
            return None
        role = Role(
            role_id=f"signal:{module.relpath}:{node.lineno}", kind="signal"
        )
        role.functions = self.reachable([resolved.qname])
        if resolved.cls is not None:
            role.entry_class = resolved.cls.qname
        return role

    # -- mutation summaries -------------------------------------------------

    def method_mutates_self(self, qname: str, depth: int = 2) -> bool:
        """Does this method write any ``self.*`` state (bounded)?"""
        cached = self._mutating.get(qname)
        if cached is not None:
            return cached
        self._mutating[qname] = False  # cycle guard
        info = self.functions.get(qname)
        if info is None or info.cls is None:
            return False
        result = False
        for node in ast.walk(info.node):
            if self._writes_self(node):
                result = True
                break
            if (
                depth > 0
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                callee = info.cls.method(node.func.attr, self)
                if callee is not None and self.method_mutates_self(
                    callee.qname, depth - 1
                ):
                    result = True
                    break
        self._mutating[qname] = result
        return result

    @staticmethod
    def _writes_self(node: ast.AST) -> bool:
        """True for statements that store through ``self``."""
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                targets = [node.func.value]
        for target in targets:
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id == "self":
                if isinstance(target, ast.Name):
                    continue
                return True
        return False

    # -- shared analysis cache ---------------------------------------------

    def cached(self, key: str, build):
        """Memoise an expensive analysis shared by several rules."""
        if key not in self._analysis_cache:
            self._analysis_cache[key] = build()
        return self._analysis_cache[key]


def build_project(ctx) -> ProjectModel:
    """The engine hook: one :class:`ProjectModel` per lint run."""
    return ProjectModel(ctx.modules)
