"""The rule registry: every plugin registers itself at import time.

A rule is a class with a ``rule_id`` (``DET001``-style), a ``name``,
a ``description``, and one or both hooks:

* ``check_module(module, ctx)`` — called once per scanned Python file
  with a :class:`~tools.mapitlint.engine.ModuleInfo`; yields
  :class:`~tools.mapitlint.findings.Finding` objects.
* ``check_project(ctx)`` — called once per run after every module is
  parsed, for cross-file rules (doc/code sync); yields findings.

Register with the :func:`register` decorator; the CLI's
``--select`` / ``--disable`` flags filter by ``rule_id``.  Plugins live
in :mod:`tools.mapitlint.rules`, whose ``__init__`` imports each module
for the side effect of registration — adding a rule is one new file
plus one import line (see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type


class Rule:
    """Base class for rule plugins; subclasses override the hooks."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module, ctx) -> Iterator:
        return iter(())

    def check_project(self, ctx) -> Iterator:
        return iter(())


_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to the registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in _RULES and _RULES[rule_id] is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id}")
    _RULES[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by rule id."""
    import tools.mapitlint.rules  # noqa: F401 - imports register the plugins

    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def known_ids() -> List[str]:
    import tools.mapitlint.rules  # noqa: F401 - imports register the plugins

    return sorted(_RULES)
