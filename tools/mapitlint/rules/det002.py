"""DET002 — wall-clock and entropy calls in golden-covered modules.

The golden-bundle suite asserts byte-identical output for identical
inputs, so the inference pipeline must never read wall-clock time or
an entropy source.  Timing belongs in ``repro.obs`` (whose volatile
keys are stripped before comparison) and randomness in ``repro.sim``
(seeded); both trees are excluded.  ``time.perf_counter`` /
``time.monotonic`` are allowed everywhere — they feed timers, not
output.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import call_name

#: dotted call names that read wall-clock time or entropy
FORBIDDEN_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getrandom",
}

#: these read the current time only when called without arguments
FORBIDDEN_WHEN_ARGLESS = {"time.ctime", "time.localtime", "time.gmtime"}

#: from-imports that smuggle the same calls in under bare names
FORBIDDEN_IMPORTS = {
    "time": {"time", "time_ns", "ctime", "localtime", "gmtime"},
    "uuid": {"uuid1", "uuid4"},
    "os": {"urandom", "getrandom"},
}

EXCLUDED_SEGMENTS = ("/sim/", "/obs/")


@register
class WallClockEntropy(Rule):
    rule_id = "DET002"
    name = "wall-clock-entropy"
    description = (
        "wall-clock or entropy reads in modules the byte-exact golden "
        "runs cover"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        slashed = "/" + module.relpath
        if any(segment in slashed for segment in EXCLUDED_SEGMENTS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                forbidden = name in FORBIDDEN_CALLS or (
                    name in FORBIDDEN_WHEN_ARGLESS and not node.args
                ) or name.startswith("secrets.")
                if forbidden:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name}() is nondeterministic; golden runs must "
                            "be a pure function of their inputs (timing goes "
                            "through repro.obs, randomness through seeded "
                            "repro.sim state)"
                        ),
                    )
            elif isinstance(node, ast.ImportFrom):
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in FORBIDDEN_IMPORTS.get(node.module or "", ())
                )
                if bad:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"importing {', '.join(bad)} from {node.module}: "
                            "wall-clock/entropy reads are banned in "
                            "golden-covered modules"
                        ),
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        yield Finding(
                            rule=self.rule_id,
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                "the secrets module is an entropy source; "
                                "golden-covered modules must stay "
                                "deterministic"
                            ),
                        )
