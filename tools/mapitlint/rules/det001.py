"""DET001 — unordered-iteration hazards.

Multipass inference is order-sensitive by construction (MAP-IT §4:
each pass reads the previous pass's inferences), so any iteration
whose order the runtime does not guarantee can change results between
runs and break the byte-exact golden bundles.  Flags:

* ``for``/comprehension iteration directly over a ``set`` literal,
  ``set()``/``frozenset()`` call, set comprehension, or a set-algebra
  method result (``union``/``intersection``/``difference``/
  ``symmetric_difference``) — wrap in ``sorted(...)`` to fix;
* ``os.listdir``/``glob.glob``/``glob.iglob``/``Path.glob``/
  ``Path.rglob``/``Path.iterdir`` results not passed directly to
  ``sorted(...)`` — filesystem enumeration order is platform noise;
* unseeded ``random`` module-level functions (and bare
  ``random.seed()``) outside ``repro.sim`` — simulation code draws
  from explicitly seeded ``random.Random`` instances instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import (
    call_name,
    is_wrapped_in,
    iteration_sources,
)

SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
FS_CALLS = {"os.listdir", "listdir", "glob.glob", "glob.iglob"}
FS_METHODS = {"glob", "rglob", "iterdir"}
#: random-module functions whose results depend on hidden global state
RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes",
}


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in SET_METHODS:
            return True
    return False


@register
class UnorderedIteration(Rule):
    rule_id = "DET001"
    name = "unordered-iteration"
    description = (
        "iteration over sets, unsorted directory listings, or unseeded "
        "random state feeding deterministic output"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        parents = module.parent_map()

        for source in iteration_sources(module.tree):
            if _is_set_expression(source):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=source.lineno,
                    col=source.col_offset,
                    message=(
                        "iterating a set: order is arbitrary; wrap in "
                        "sorted(...) before the order can leak into output"
                    ),
                )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            is_fs = name in FS_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in FS_METHODS
                and name not in FS_CALLS
                and not (name or "").startswith("glob.")
            )
            if is_fs and not is_wrapped_in(node, parents, ("sorted",)):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "filesystem enumeration order is not deterministic; "
                        "pass the result directly to sorted(...)"
                    ),
                )

        if "/sim/" in "/" + module.relpath:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name not in ("Random", "SystemRandom")
                )
                if bad:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"unseeded random import ({', '.join(bad)}): use an "
                            "explicitly seeded random.Random instance"
                        ),
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name and name.startswith("random."):
                    func = name.split(".", 1)[1]
                    unseeded = func in RANDOM_FUNCS or (
                        func == "seed" and not node.args
                    )
                    if unseeded:
                        yield Finding(
                            rule=self.rule_id,
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"{name}() draws from hidden global state; use "
                                "an explicitly seeded random.Random instance"
                            ),
                        )
