"""CLI001 — CLI flag / subcommand ↔ docs/CLI.md sync.

Walks the argparse construction in ``repro/cli.py`` statically: every
``add_parser("name", ...)`` subcommand must be shown as ``mapit name``
in docs/CLI.md, and every literal ``--flag`` handed to
``add_argument`` must appear there too (as a whole token — ``--f``
does not match ``--foo``).  This supersedes the ad-hoc runtime
coverage test: the rule needs no import of the package and composes
with the pragma/baseline workflow.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register

DOC = "docs/CLI.md"
CLI_SUFFIX = "repro/cli.py"


@register
class CliDocSync(Rule):
    rule_id = "CLI001"
    name = "cli-doc-sync"
    description = (
        "every argparse subcommand and --flag in repro/cli.py is "
        "documented in docs/CLI.md"
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        module = ctx.module(CLI_SUFFIX)
        if module is None:
            return
        subcommands = []
        options = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr == "add_parser":
                if node.args and isinstance(node.args[0], ast.Constant):
                    value = node.args[0].value
                    if isinstance(value, str):
                        subcommands.append((value, node.lineno, node.col_offset))
            elif node.func.attr == "add_argument":
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        if arg.value.startswith("--"):
                            options.append((arg.value, arg.lineno, arg.col_offset))
        if not subcommands and not options:
            return
        doc = ctx.doc_text(DOC)
        if doc is None:
            anchor = subcommands[0] if subcommands else options[0]
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=anchor[1],
                col=anchor[2],
                message=f"{DOC} not found; CLI surface cannot be verified",
            )
            return
        for name, line, col in subcommands:
            if f"mapit {name}" not in doc:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=line,
                    col=col,
                    message=f"subcommand {name!r} is not documented in {DOC}",
                )
        for option, line, col in options:
            if option == "--help":
                continue
            pattern = re.escape(option) + r"(?![A-Za-z0-9-])"
            if not re.search(pattern, doc):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=line,
                    col=col,
                    message=f"flag {option} is not documented in {DOC}",
                )
