"""DET003 — nondeterminism taint flowing into deterministic artifacts.

DET002 bans wall-clock/entropy *call sites* in golden-covered modules;
this rule upgrades the check to dataflow: a nondeterministic value —
``time.time()``, ``datetime.now()``, ``uuid4()``, ``os.urandom()``,
``id()``, and the monotonic timers ``perf_counter``/``monotonic``
(fine for *timing*, catastrophic in *output*) — must never flow, even
through helper functions, into any artifact the byte-identity contract
covers:

* **fingerprints** — calls to (or returns of) anything named
  ``*fingerprint*`` (the §4.6 state fingerprint is the contract every
  differential and chaos harness checks);
* **journal records** — ``RunJournal.append`` /
  ``append_with_blob`` / ``store_blob`` and ``write_checkpoint``
  (a resumed run must replay to the same bytes);
* **cache keys** — anything named ``*cache_key*`` (a
  time-salted key silently defeats every warm-start equivalence test);
* **snapshot fields** — arguments of a ``*Snapshot`` constructor (the
  serve query API promises snapshot-derived payloads are reproducible).

Taint propagation is the bounded engine in
:mod:`tools.mapitlint.dataflow`: intraprocedural reaching definitions
with strong updates plus memoised interprocedural summaries to
``MAX_DEPTH`` call levels.  Every finding names the source and its hop
chain in the message and carries the source location in ``related``,
so "``time.time()`` two calls deep" is reported at the sink with the
full route.  Timestamps that stay inside ``repro.obs`` trace events
are *not* sinks — the trace comparators strip volatile keys by design.
Suppress a reviewed exception with
``# mapitlint: disable=DET003 -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from tools.mapitlint.dataflow import MAX_DEPTH, TaintEngine, TaintOrigin
from tools.mapitlint.findings import Finding
from tools.mapitlint.project import ClassInfo, FunctionInfo, ProjectModel
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import call_name
from tools.mapitlint.rules.det002 import FORBIDDEN_CALLS, FORBIDDEN_WHEN_ARGLESS

#: monotonic timers: legal for timing (DET002 allows them), still
#: nondeterministic data the moment they land in output
TIMER_CALLS = {"time.perf_counter", "time.perf_counter_ns", "time.monotonic",
               "time.monotonic_ns"}

#: journal methods whose arguments become durable, replay-compared bytes
JOURNAL_SINKS = {"append", "append_with_blob", "store_blob"}

#: function-name fragments that mark a deterministic-artifact producer
NAME_SINKS = ("fingerprint", "cache_key")


def _source_probe(project: ProjectModel):
    """The TaintEngine policy hook: is this call a nondeterminism source?"""

    def probe(module, node: ast.Call) -> Optional[str]:
        name = call_name(node)
        if name is None:
            return None
        resolved = project.resolve_name(module, name) or name
        for candidate in (name, resolved):
            if candidate in FORBIDDEN_CALLS or candidate in TIMER_CALLS:
                return f"{candidate}()"
            if candidate in FORBIDDEN_WHEN_ARGLESS and not node.args:
                return f"{candidate}()"
            if candidate.startswith("secrets."):
                return f"{candidate}()"
        if name == "id" and len(node.args) == 1:
            return "id()"
        return None

    return probe


def _sink_description(project: ProjectModel, info: FunctionInfo, node: ast.Call):
    """What deterministic artifact this call produces, else None."""
    name = call_name(node) or ""
    tail = name.rsplit(".", 1)[-1]
    lowered = tail.lower()
    for fragment in NAME_SINKS:
        if fragment in lowered:
            return f"{tail}() ({fragment} of the byte-identity contract)"
    if tail == "write_checkpoint":
        return "write_checkpoint() (journal checkpoint bytes)"
    if tail in JOURNAL_SINKS and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        receiver_type = project.expr_type(info, receiver) or ""
        receiver_name = _dotted(receiver) or ""
        if "journal" in receiver_type.lower() or "journal" in receiver_name.lower():
            return f"journal.{tail}() (durable replay-compared record)"
    callee = project.resolve_call(info, node)
    if isinstance(callee, ClassInfo) and "snapshot" in callee.node.name.lower():
        return f"{callee.node.name}(...) (published snapshot field)"
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class DeterminismTaint(Rule):
    rule_id = "DET003"
    name = "determinism-taint"
    description = (
        "wall-clock/entropy/id() values flowing (interprocedurally) into "
        "fingerprints, journal records, cache keys, or snapshot fields"
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        project = ctx.project()
        engine = TaintEngine(project, _source_probe(project))
        for qname in sorted(project.functions):
            info = project.functions[qname]
            env = engine.reach(info, {})
            yield from self._check_sink_calls(project, engine, info, env)
            yield from self._check_producer_returns(engine, info, env)

    def _check_sink_calls(
        self,
        project: ProjectModel,
        engine: TaintEngine,
        info: FunctionInfo,
        env: Dict[str, TaintOrigin],
    ) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_description(project, info, node)
            if sink is None:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                origin = engine.expr_taint(info, arg, env, MAX_DEPTH)
                if origin is None or origin.kind != "source":
                    continue
                yield Finding(
                    rule=self.rule_id,
                    path=info.module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"nondeterministic value reaches {sink}: "
                        f"{origin.describe_route()} — byte-identical "
                        "replay/differential runs will diverge; derive the "
                        "value from the input data or move it to repro.obs"
                    ),
                    related=f"source {origin.path}:{origin.line}",
                )
                break  # one finding per sink call

    def _check_producer_returns(
        self,
        engine: TaintEngine,
        info: FunctionInfo,
        env: Dict[str, TaintOrigin],
    ) -> Iterator[Finding]:
        lowered = info.name.lower()
        if not any(fragment in lowered for fragment in NAME_SINKS):
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            origin = engine.expr_taint(info, node.value, env, MAX_DEPTH)
            if origin is None or origin.kind != "source":
                continue
            yield Finding(
                rule=self.rule_id,
                path=info.module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{info.qname}() returns a nondeterministic value: "
                    f"{origin.describe_route()} — a "
                    f"{'/'.join(NAME_SINKS)} producer must be a pure "
                    "function of its inputs"
                ),
                related=f"source {origin.path}:{origin.line}",
            )
            break
