"""Shared AST utilities for rule plugins."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call targets (``glob.glob`` for glob.glob(...))."""
    return dotted_name(node.func)


def is_wrapped_in(
    node: ast.AST, parents: Dict[ast.AST, ast.AST], func_names: tuple
) -> bool:
    """True when *node* is a direct argument of a call to *func_names*.

    ``sorted(os.listdir(p))`` wraps the listdir call; being nested
    deeper (``sorted(f(os.listdir(p)))``) does not count.
    """
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        name = call_name(parent)
        if name in func_names:
            return True
    return False


def first_string_arg(node: ast.Call) -> Optional[str]:
    """The literal value of the first positional argument, if a str."""
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def iteration_sources(tree: ast.Module) -> Iterator[ast.AST]:
    """Every expression some construct iterates over.

    Covers ``for`` statements (sync and async) and all four
    comprehension forms; these are the positions where an unordered
    container leaks its ordering into program behaviour.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
