"""FORK001 — fork-pool safety.

The ``repro.perf`` execution layer hands workers to ``fork`` pools
(:func:`repro.perf.pool.fork_map`); the contract is that workers are
module-level functions pickled *by reference* and that shard results
merge order-independently.  Flags:

* a lambda, bound method (``self.x`` / ``cls.x``), or nested function
  passed as the worker to ``fork_map`` or a pool ``map``-family call —
  these either fail to pickle or drag instance state across the fork;
* any use of ``imap_unordered`` — completion-order results break the
  deterministic order-preserving merge the golden runs rely on;
* inside ``repro.perf`` modules, a function body that declares
  ``global`` and assigns the name — module-level mutable state mutated
  post-fork diverges silently between parent and children (the
  parent-side copy-on-write stash in ``pool.py`` is the one sanctioned
  pattern, pragma-annotated there).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import dotted_name

POOL_METHODS = {"map", "imap", "starmap", "map_async", "starmap_async", "apply_async"}


def _worker_call_info(node: ast.Call):
    """(is_pool_call, worker_arg) for fork_map / pool-map-family calls."""
    func = node.func
    name = dotted_name(func)
    if name and (name == "fork_map" or name.endswith(".fork_map")):
        return True, (node.args[0] if node.args else None)
    if isinstance(func, ast.Attribute) and func.attr in POOL_METHODS:
        receiver = dotted_name(func.value) or ""
        if "pool" in receiver.lower():
            return True, (node.args[0] if node.args else None)
    return False, None


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside other functions (closures)."""
    nested: Set[str] = set()
    module_level = {
        stmt.name
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inner.name not in module_level:
                        nested.add(inner.name)
    return nested


@register
class ForkSafety(Rule):
    rule_id = "FORK001"
    name = "fork-safety"
    description = (
        "unpicklable or state-dragging workers handed to fork pools, "
        "order-breaking pool calls, and post-fork global mutation"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        nested = _nested_function_names(module.tree)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "imap_unordered"
            ):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "imap_unordered yields results in completion order; "
                        "the deterministic merge requires shard order"
                    ),
                )
                continue
            is_pool, worker = _worker_call_info(node)
            if not is_pool or worker is None:
                continue
            if isinstance(worker, ast.Lambda):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=worker.lineno,
                    col=worker.col_offset,
                    message=(
                        "lambda passed as a pool worker: workers must be "
                        "module-level functions picklable by reference"
                    ),
                )
            elif isinstance(worker, ast.Attribute):
                base = dotted_name(worker.value)
                if base in ("self", "cls"):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=worker.lineno,
                        col=worker.col_offset,
                        message=(
                            "bound method passed as a pool worker: pickling "
                            "drags the whole instance across the fork; use a "
                            "module-level function"
                        ),
                    )
            elif isinstance(worker, ast.Name) and worker.id in nested:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=worker.lineno,
                    col=worker.col_offset,
                    message=(
                        f"nested function {worker.id!r} passed as a pool "
                        "worker: closures do not pickle; hoist it to module "
                        "level"
                    ),
                )

        if "/perf/" not in "/" + module.relpath:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Global):
                    declared.update(stmt.names)
            if not declared:
                continue
            for stmt in ast.walk(node):
                targets = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        yield Finding(
                            rule=self.rule_id,
                            path=module.relpath,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"assignment to module global {target.id!r} "
                                "inside a repro.perf function: post-fork "
                                "mutation diverges between parent and workers"
                            ),
                        )
