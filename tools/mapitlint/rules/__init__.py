"""Rule plugins — importing this package registers every rule.

To add a rule: create a module here defining a
:class:`~tools.mapitlint.registry.Rule` subclass decorated with
:func:`~tools.mapitlint.registry.register`, then import it below.
"""

from tools.mapitlint.rules import (  # noqa: F401 - imports register the plugins
    cli001,
    det001,
    det002,
    det003,
    err001,
    fork001,
    fork002,
    fork003,
    obs001,
    ora001,
    race001,
)
