"""RACE001/RACE002 — thread-role races on shared attributes.

The serve daemon's concurrency contract (docs/SERVE.md) is narrow:
mutable state is owned by exactly one role — the pump folds and
quiesces, reader threads only ``offer`` under the daemon lock — and
everything readers consume is published by a *single reference swap*
of an immutable snapshot.  These rules check that contract over the
whole program, using the project model's inferred **thread roles**
(``threading.Thread(target=...)`` call sites, HTTP handler classes,
``signal.signal`` handlers) and bounded call-graph reachability.

* **RACE001** (cross-role): an attribute is mutated *in place*
  (``+=``, subscript store, ``.append``, a method known to write
  ``self``) in one role while a different role touches the same
  attribute, and the two sides do not both hold a lock.  A plain
  ``self.attr = fresh_object`` is the sanctioned swap and never flags;
  the lock requirement is mutual — a locked writer does not make an
  unlocked reader safe (dict iteration during a locked mutation still
  tears).
* **RACE002** (multi-instance self-race): code that many instances of
  one role run concurrently — HTTP handler threads, threads spawned in
  a loop — performs an unlocked read-modify-write or unlocked
  assignment on an attribute of a *shared* object (an object of a
  class other than the role's own per-instance entry class).

Deliberate precision bounds (docs/STATIC_ANALYSIS.md): threading
synchronisation primitives, classes under ``repro/obs/`` (advisory
metrics tolerate torn reads by design), writes inside the owning
class's ``__init__`` (construction precedes sharing), and pairs inside
a single function (one worker object per thread is the idiom — a
function racing itself across roles would need two roles sharing one
instance, which the sanctioned patterns never do) are all exempt.
Suppress a reviewed exception with
``# mapitlint: disable=RACE001 -- <why>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from tools.mapitlint.findings import Finding
from tools.mapitlint.project import (
    LOCK_TYPES,
    MUTATOR_METHODS,
    SYNC_TYPES,
    ClassInfo,
    FunctionInfo,
    ProjectModel,
    Role,
)
from tools.mapitlint.registry import Rule, register

#: the implicit role of every function no thread/handler/signal reaches
MAIN_ROLE = Role(role_id="main", kind="main")

#: access kinds
READ = "read"
SWAP = "swap"  # plain reference assignment: the sanctioned publish
INPLACE = "inplace"  # mutation observable through an existing reference


@dataclass
class Access:
    """One touch of a (class, attribute) pair inside one function."""

    cls: str  # owning class qname
    attr: str
    kind: str  # READ | SWAP | INPLACE
    rmw: bool  # read-modify-write (augmented assignment)
    locked: bool
    func: str  # accessing function qname
    path: str
    line: int
    col: int


def _is_lock_expr(project: ProjectModel, info: FunctionInfo, node: ast.AST) -> bool:
    """Does ``with <node>:`` take a lock?  By type when resolvable,
    by the ``lock`` naming convention otherwise."""
    typed = project.expr_type(info, node)
    if typed in LOCK_TYPES:
        return True
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    return False


def _locked_ids(project: ProjectModel, info: FunctionInfo) -> set:
    """ids of AST nodes lexically inside a lock-holding ``with``."""
    locked: set = set()

    def visit(node: ast.AST, inside: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_lock_expr(project, info, item.context_expr) for item in node.items):
                inside = True
        if inside:
            locked.add(id(node))
        for child in ast.iter_child_nodes(node):
            visit(child, inside)

    visit(info.node, False)
    return locked


def _attr_base(node: ast.AST) -> ast.AST:
    """Strip subscripts: ``self.stats["x"]`` → the ``self.stats`` attribute."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _record(
    project: ProjectModel,
    info: FunctionInfo,
    env: Dict[str, Optional[str]],
    attr_node: ast.Attribute,
    kind: str,
    rmw: bool,
    locked: bool,
) -> Optional[Access]:
    owner_type = project.expr_type(info, attr_node.value, env)
    owner = project.class_of(owner_type)
    if owner is None:
        return None
    if "/obs/" in "/" + owner.module.relpath:
        return None  # advisory metrics tolerate torn reads by design
    attr = attr_node.attr
    if "lock" in attr.lower():
        return None
    attr_type = owner.attr_types.get(attr)
    if attr_type in LOCK_TYPES or attr_type in SYNC_TYPES:
        return None
    if owner.method(attr, project) is not None:
        return None  # method/property access, not shared data
    if info.cls is owner and info.name == "__init__":
        return None  # construction precedes sharing
    return Access(
        cls=owner.qname,
        attr=attr,
        kind=kind,
        rmw=rmw,
        locked=locked,
        func=info.qname,
        path=info.module.relpath,
        line=attr_node.lineno,
        col=attr_node.col_offset,
    )


def _collect_function(project: ProjectModel, info: FunctionInfo) -> List[Access]:
    env = project.local_types(info)
    locked_ids = _locked_ids(project, info)
    accesses: List[Access] = []
    consumed: set = set()  # attribute nodes already classified as writes

    def add_write(attr_node: ast.AST, kind: str, rmw: bool, locked: bool) -> None:
        if not isinstance(attr_node, ast.Attribute):
            return
        consumed.add(id(attr_node))
        access = _record(project, info, env, attr_node, kind, rmw, locked)
        if access is not None:
            accesses.append(access)

    def classify_target(target: ast.AST, rmw: bool, locked: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                classify_target(element, rmw, locked)
            return
        if isinstance(target, ast.Starred):
            classify_target(target.value, rmw, locked)
            return
        if isinstance(target, ast.Subscript):
            # self.stats["x"] = v mutates the container self.stats
            add_write(_attr_base(target), INPLACE, rmw, locked)
            return
        if isinstance(target, ast.Attribute):
            # the outer attribute is rebound: a swap (sanctioned) —
            # unless augmented, which reads the old value first
            add_write(target, INPLACE if rmw else SWAP, rmw, locked)
            # ...but self.graph.other_sides = x also mutates self.graph
            if isinstance(target.value, ast.Attribute):
                add_write(target.value, INPLACE, False, locked)

    for node in ast.walk(info.node):
        locked = id(node) in locked_ids
        if isinstance(node, ast.Assign):
            for target in node.targets:
                classify_target(target, False, locked)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            classify_target(node.target, False, locked)
        elif isinstance(node, ast.AugAssign):
            classify_target(node.target, True, locked)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                classify_target(_attr_base(target), False, locked)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if not isinstance(receiver, ast.Attribute):
                continue
            if node.func.attr in MUTATOR_METHODS:
                add_write(receiver, INPLACE, False, locked)
            # A call to a *project* method that mutates its receiver
            # (self.index.fold(...)) is deliberately not re-flagged
            # here: the writes inside the callee are recorded on the
            # callee's own class with full role attribution, and one
            # finding per mutation beats one per call site.

    for node in ast.walk(info.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in consumed
        ):
            access = _record(
                project, info, env, node, READ, False, id(node) in locked_ids
            )
            if access is not None:
                accesses.append(access)
    return accesses


@dataclass
class RaceAnalysis:
    """Shared between RACE001 and RACE002 via the project cache."""

    #: (class qname, attr) -> accesses in deterministic order
    by_key: Dict[Tuple[str, str], List[Access]]
    #: function qname -> roles running it (MAIN_ROLE when unroled)
    role_map: Dict[str, List[Role]]

    def roles_of(self, func: str) -> List[Role]:
        return self.role_map.get(func) or [MAIN_ROLE]


def _analyze(project: ProjectModel) -> RaceAnalysis:
    by_key: Dict[Tuple[str, str], List[Access]] = {}
    for qname in sorted(project.functions):
        for access in _collect_function(project, project.functions[qname]):
            by_key.setdefault((access.cls, access.attr), []).append(access)
    for accesses in by_key.values():
        accesses.sort(key=lambda a: (a.path, a.line, a.col, a.func))
    role_map: Dict[str, List[Role]] = {}
    for role in project.roles():
        for func in role.functions:
            role_map.setdefault(func, []).append(role)
    for roles in role_map.values():
        roles.sort(key=lambda r: r.role_id)
    return RaceAnalysis(by_key=by_key, role_map=role_map)


def race_analysis(ctx) -> RaceAnalysis:
    project = ctx.project()
    return project.cached("race-analysis", lambda: _analyze(project))


def _cross_roles(a: List[Role], b: List[Role]) -> Optional[Tuple[Role, Role]]:
    """A pair of distinct roles proving *a* and *b* can run concurrently."""
    for ra in a:
        for rb in b:
            if ra.role_id != rb.role_id:
                return ra, rb
    return None


def _role_label(role: Role) -> str:
    if role.kind == "main":
        return "the main thread"
    entry = f" of {role.entry_class.rsplit('.', 1)[-1]}" if role.entry_class else ""
    plural = "s" if role.multi else ""
    return f"{role.kind} thread{plural}{entry} ({role.role_id})"


@register
class CrossRoleRace(Rule):
    rule_id = "RACE001"
    name = "cross-role-shared-mutation"
    description = (
        "attribute mutated in place in one thread role and touched from "
        "another without a mutual lock or a snapshot-reference swap"
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        analysis = race_analysis(ctx)
        for key in sorted(analysis.by_key):
            accesses = analysis.by_key[key]
            emitted = False
            for write in accesses:
                if emitted or write.kind != INPLACE:
                    continue
                for other in accesses:
                    if other.func == write.func:
                        continue  # per-instance worker-object idiom
                    if write.locked and other.locked:
                        continue
                    pair = _cross_roles(
                        analysis.roles_of(write.func), analysis.roles_of(other.func)
                    )
                    if pair is None:
                        continue
                    writer_role, other_role = pair
                    cls_name, attr = key[0].rsplit(".", 1)[-1], key[1]
                    verb = "accesses" if other.kind == READ else "also writes"
                    yield Finding(
                        rule=self.rule_id,
                        path=write.path,
                        line=write.line,
                        col=write.col,
                        message=(
                            f"{cls_name}.{attr} is mutated in place in "
                            f"{_role_label(writer_role)} by {write.func} "
                            f"while {other.func} ({_role_label(other_role)}) "
                            f"{verb} it without a mutual lock; publish "
                            "readers a fresh object via a single reference "
                            "swap or hold one lock on both sides "
                            "(docs/SERVE.md)"
                        ),
                        related=f"{other.path}:{other.line} ({other.func})",
                    )
                    emitted = True
                    break


@register
class MultiInstanceRace(Rule):
    rule_id = "RACE002"
    name = "multi-instance-self-race"
    description = (
        "unlocked read-modify-write or assignment on shared state from a "
        "role that runs many instances concurrently"
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        analysis = race_analysis(ctx)
        for key in sorted(analysis.by_key):
            for access in analysis.by_key[key]:
                if access.kind == READ or access.locked:
                    continue
                for role in analysis.roles_of(access.func):
                    if not role.multi or role.entry_class == access.cls:
                        continue
                    cls_name, attr = key[0].rsplit(".", 1)[-1], key[1]
                    if access.rmw:
                        what = "read-modify-write"
                        hint = (
                            "concurrent increments lose updates; take the "
                            "owning object's lock"
                        )
                    elif access.kind == INPLACE:
                        what = "in-place mutation"
                        hint = "take the owning object's lock"
                    else:
                        what = "assignment"
                        hint = (
                            "last writer silently wins; take the owning "
                            "object's lock or route through the single "
                            "pump role"
                        )
                    yield Finding(
                        rule=self.rule_id,
                        path=access.path,
                        line=access.line,
                        col=access.col,
                        message=(
                            f"unlocked {what} of shared {cls_name}.{attr} in "
                            f"{_role_label(role)}: many instances run this "
                            f"concurrently — {hint} (docs/SERVE.md)"
                        ),
                        related=f"role {role.role_id}",
                    )
                    break
