"""OBS001 — tracer/metric name ↔ docs/OBSERVABILITY.md sync.

The observability docs are the schema consumers parse traces and
metrics against, so every *literal* event, counter, gauge, span, and
timer name emitted in ``src/`` must appear in docs/OBSERVABILITY.md.
Names built at runtime (f-strings, variables) are skipped — only
string literals are checkable statically.  Span names are accepted
when the doc mentions either the raw name or its exported
``span.<name>`` timer form.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import first_string_arg

DOC = "docs/OBSERVABILITY.md"

#: facade/registry methods whose first argument is an emitted name
EMIT_METHODS = {"event", "emit", "inc", "gauge", "span", "observe", "set_gauge"}


@register
class ObservabilityNameSync(Rule):
    rule_id = "OBS001"
    name = "obs-name-sync"
    description = (
        "every literal trace-event / metric / span name emitted in code "
        "is documented in docs/OBSERVABILITY.md"
    )

    def _emitted_names(self, module) -> List[Tuple[str, str, int, int]]:
        names = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in EMIT_METHODS:
                continue
            literal = first_string_arg(node)
            if literal is None:
                continue
            names.append((method, literal, node.lineno, node.col_offset))
        return names

    def check_project(self, ctx) -> Iterator[Finding]:
        sites = []
        for module in ctx.modules:
            if "repro/" not in module.relpath:
                continue
            for method, name, line, col in self._emitted_names(module):
                sites.append((module, method, name, line, col))
        if not sites:
            return
        doc = ctx.doc_text(DOC)
        if doc is None:
            first = sites[0][0]
            yield Finding(
                rule=self.rule_id,
                path=first.relpath,
                line=sites[0][3],
                col=sites[0][4],
                message=f"{DOC} not found; emitted names cannot be verified",
            )
            return
        for module, method, name, line, col in sites:
            documented = name in doc
            if not documented and method in ("span", "observe"):
                documented = f"span.{name}" in doc
            if not documented:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=line,
                    col=col,
                    message=(
                        f"{method} name {name!r} is not documented in {DOC}; "
                        "add it to the event schema / metrics tables"
                    ),
                )
