"""ORA001 — oracle independence from the production engine.

The paper-literal reference implementation (``repro.oracle``) exists
to check ``repro.core`` differentially (docs/DIFFERENTIAL_TESTING.md),
which only works while the two share *no code*: an oracle that imports
an engine helper inherits the helper's bugs, and the harness stops
being able to see them.  This rule flags any import of ``repro.core``
(or a submodule) inside ``src/repro/oracle/`` — including imports
nested in functions, which would evade a top-of-file review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register

FORBIDDEN = "repro.core"
ORACLE_DIR = "repro/oracle/"


@register
class OracleIndependence(Rule):
    rule_id = "ORA001"
    name = "oracle-independence"
    description = (
        "repro.oracle never imports repro.core — the reference "
        "implementation must not share code with what it checks"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        if ORACLE_DIR not in module.relpath:
            return
        for node in ast.walk(module.tree):
            offender = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == FORBIDDEN or alias.name.startswith(
                        FORBIDDEN + "."
                    ):
                        offender = alias.name
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if source == FORBIDDEN or source.startswith(FORBIDDEN + "."):
                    offender = source
            if offender is not None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"oracle module imports {offender!r}; the reference "
                        "implementation must stay independent of repro.core "
                        "(restate the logic instead — see repro/oracle/__init__.py)"
                    ),
                )
