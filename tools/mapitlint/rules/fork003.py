"""FORK003 — fork-boundary returns must come from the packed allowlist.

PR 7's 0.32x→0.96x parallel-speedup fix was entirely about what
crosses the fork boundary: workers that pickled per-object trace lists
spent more time serialising than parsing, and the cure was columnar
packed types (one ``bytes``-backed block, near-memcpy to pickle).
This rule makes the regression structural: every worker handed to
:func:`repro.perf.pool.fork_map` / ``supervised_pool_map`` is resolved
through the project call graph and its *return type* is checked
against the allowlist —

* primitives (``int``/``str``/``bytes``/``bool``/``float``/``None``)
  and tuples/containers of primitives;
* the packed columnar types (``FlatTraces``, ``FlatGraphBundle``) and
  anything reduced to ``bytes`` via ``.to_bytes()``;
* fixed-field dataclasses whose fields are themselves allowlisted —
  a ``List[SomeProjectClass]`` field is a violation *regardless* of
  that class's own fields, because per-element object pickling is
  exactly the cost that regressed.

A ``dict``/``set`` literal or an arbitrary project object returned
from a worker is flagged at the return (or at the offending dataclass
field), with the ``fork_map`` call site attached as the related sink.
Unresolvable workers and unknown types get the benefit of the doubt —
precision over completeness.  Suppress a measured exception with
``# mapitlint: disable=FORK003 -- <why>`` or a justified baseline
entry.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from tools.mapitlint.findings import Finding
from tools.mapitlint.project import ClassInfo, FunctionInfo, ProjectModel
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import call_name

#: columnar packed types cleared to cross the boundary whole
PACKED_ALLOWLIST = {"FlatTraces", "FlatGraphBundle"}

#: calls that dispatch a worker across the fork boundary (first arg)
BOUNDARY_CALLS = {"fork_map", "supervised_pool_map"}

PRIMITIVES = {"int", "str", "bytes", "bool", "float", "complex", "None", "NoneType"}

#: container heads whose *elements* are checked
CONTAINERS = {"List", "list", "Sequence", "Tuple", "tuple", "Dict", "dict",
              "Set", "set", "FrozenSet", "frozenset", "Optional", "Iterable"}


def _annotation_violations(
    project: ProjectModel,
    module,
    node: Optional[ast.AST],
    depth: int = 3,
    in_container: bool = False,
) -> List[str]:
    """Reasons this annotation is not fork-boundary safe (empty = OK).

    Inside a container, *any* non-packed project class is a violation —
    per-element object pickling is the regression itself, however
    simple each element's fields are.  At the top level a dataclass is
    given to the field-by-field audit instead.
    """
    if node is None or depth <= 0:
        return []
    if isinstance(node, ast.Constant):
        if node.value is None:
            return []
        if isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return []
    if isinstance(node, ast.Subscript):
        head = _tail_name(node.value)
        if head in CONTAINERS:
            elements = (
                list(node.slice.elts)
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            problems: List[str] = []
            # Optional/Tuple wrap, they don't multiply: only true
            # element containers force the per-element argument
            elementwise = head not in ("Optional", "Tuple", "tuple")
            for element in elements:
                problems.extend(
                    _annotation_violations(
                        project,
                        module,
                        element,
                        depth - 1,
                        in_container or elementwise,
                    )
                )
            return problems
        return []  # unknown generic: benefit of the doubt
    tail = _tail_name(node)
    if tail is None or tail in PRIMITIVES or tail in PACKED_ALLOWLIST:
        return []
    if tail in ("object", "Any", "Ellipsis"):
        return []
    resolved = project.resolve_name(module, _dotted_of(node) or tail)
    cls = project.class_of(resolved)
    if cls is None:
        return []  # stdlib / unresolved: benefit of the doubt
    if cls.node.name in PACKED_ALLOWLIST:
        return []
    if cls.is_dataclass and not in_container:
        return []  # audited field-by-field by the result-class check
    if in_container:
        return [
            f"a container of {cls.node.name} objects pickles every "
            "element individually — the exact per-object cost the "
            "packed columnar types exist to avoid"
        ]
    return [
        f"{cls.node.name} objects pickle per-field at every boundary "
        "crossing; return a packed columnar type or primitives"
    ]


def _tail_name(node: ast.AST) -> Optional[str]:
    dotted = _dotted_of(node)
    return dotted.rsplit(".", 1)[-1] if dotted else None


def _dotted_of(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _class_field_violations(
    project: ProjectModel, cls: ClassInfo, seen: set
) -> List[Tuple[str, str, int, str]]:
    """(path, field, line, reason) for every boundary-unsafe field of a
    dataclass result type, bases included, each field reported once."""
    if cls.qname in seen:
        return []
    seen.add(cls.qname)
    problems: List[Tuple[str, str, int, str]] = []
    for name in sorted(cls.fields):
        for reason in _annotation_violations(project, cls.module, cls.fields[name]):
            problems.append(
                (
                    cls.module.relpath,
                    f"{cls.node.name}.{name}",
                    cls.field_lines.get(name, cls.node.lineno),
                    reason,
                )
            )
    for base in cls.bases:
        parent = project.class_of(base)
        if parent is not None:
            problems.extend(_class_field_violations(project, parent, seen))
    return problems


def _worker_result_class(
    project: ProjectModel, worker: FunctionInfo
) -> Optional[ClassInfo]:
    """The project class a worker's return statements produce, if one
    resolves (annotation first, then light local typing)."""
    if worker.return_type is not None:
        cls = project.class_of(worker.return_type)
        if cls is not None:
            return cls
    env = project.local_types(worker)
    for node in ast.walk(worker.node):
        if isinstance(node, ast.Return) and node.value is not None:
            cls = project.class_of(project.expr_type(worker, node.value, env))
            if cls is not None:
                return cls
    return None


@register
class ForkBoundaryTypes(Rule):
    rule_id = "FORK003"
    name = "fork-boundary-packed-types"
    description = (
        "worker return values crossing the fork boundary must be packed "
        "columnar types, primitives, or fixed-field dataclasses thereof"
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        project = ctx.project()
        reported_fields: set = set()
        for qname in sorted(project.functions):
            info = project.functions[qname]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None or name.rsplit(".", 1)[-1] not in BOUNDARY_CALLS:
                    continue
                if not node.args:
                    continue
                worker = project.resolve_callable_ref(info, node.args[0])
                if not isinstance(worker, FunctionInfo):
                    continue  # dynamic dispatch: benefit of the doubt
                sink = f"{info.module.relpath}:{node.lineno} ({name} call site)"
                yield from self._check_worker(project, worker, sink, reported_fields)

    def _check_worker(
        self,
        project: ProjectModel,
        worker: FunctionInfo,
        sink: str,
        reported_fields: set,
    ) -> Iterator[Finding]:
        module = worker.module
        # 1. literal dict/set returns: the unpacked-objects regression
        #    in its most direct form
        for node in ast.walk(worker.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, (ast.Dict, ast.DictComp, ast.Set, ast.SetComp)):
                kind = "dict" if isinstance(value, (ast.Dict, ast.DictComp)) else "set"
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"worker {worker.qname} returns an unpacked {kind} "
                        "across the fork boundary; pickle cost scales with "
                        "entries — return a packed columnar type "
                        "(FlatTraces/FlatGraphBundle), bytes, or a tuple of "
                        "primitives"
                    ),
                    related=sink,
                )
        # 2. annotated/inferred return type against the allowlist
        if worker.node.returns is not None:
            for reason in _annotation_violations(project, module, worker.node.returns):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=worker.node.lineno,
                    col=worker.node.col_offset,
                    message=(
                        f"worker {worker.qname} is declared to return a "
                        f"boundary-unsafe type: {reason}"
                    ),
                    related=sink,
                )
        # 3. dataclass result types: audit every field (bases included)
        result_cls = _worker_result_class(project, worker)
        if result_cls is not None and result_cls.node.name not in PACKED_ALLOWLIST:
            for path, fieldname, line, reason in _class_field_violations(
                project, result_cls, set()
            ):
                dedup = (path, fieldname)
                if dedup in reported_fields:
                    continue
                reported_fields.add(dedup)
                yield Finding(
                    rule=self.rule_id,
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"fork-boundary result field {fieldname} "
                        f"(returned by {worker.qname}): {reason}"
                    ),
                    related=sink,
                )
