"""ERR001 — error hygiene.

The resilience layer (``repro.robust``) exists so corruption is
*quantified*, never silently absorbed: every rejected record feeds an
``IngestError``/``ErrorBudget``.  A handler that catches everything
and tells no one defeats that design.  Flags:

* a bare ``except:`` — also traps ``KeyboardInterrupt``/``SystemExit``;
* ``except Exception`` / ``except BaseException`` (alone or in a
  tuple) whose body neither re-raises nor accounts for the error —
  accounting meaning a call into logging/health/metrics machinery
  (``record``, ``warn``, ``inc``, ``emit``, …) or any ``ErrorBudget``
  use.

Narrow handlers (``except KeyError: continue``) are fine — catching a
*specific* expected condition is control flow, not error suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import dotted_name

BROAD = {"Exception", "BaseException"}

#: callable attribute/function names that count as accounting for the
#: caught error (logging, health records, metrics, budget checks)
ACCOUNTING_CALLS = {
    "record", "log", "debug", "info", "warning", "warn", "error",
    "exception", "critical", "inc", "event", "emit", "check", "fail",
    "add_error", "print",
}


def _names_in(node: ast.AST):
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _names_in(element)
    else:
        name = dotted_name(node)
        if name:
            yield name.rsplit(".", 1)[-1]


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False  # bare: reported separately
    return any(name in BROAD for name in _names_in(handler.type))


def _accounts_for_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            attr = None
            if isinstance(func, ast.Attribute):
                attr = func.attr
            elif isinstance(func, ast.Name):
                attr = func.id
            if attr in ACCOUNTING_CALLS:
                return True
        name = dotted_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
        if name and "ErrorBudget" in name:
            return True
    return False


@register
class ErrorHygiene(Rule):
    rule_id = "ERR001"
    name = "error-hygiene"
    description = (
        "bare excepts and broad handlers that swallow errors without "
        "re-raise, logging, or ErrorBudget accounting"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "bare except: traps KeyboardInterrupt/SystemExit too; "
                        "name the exception types"
                    ),
                )
            elif _is_broad(node) and not _accounts_for_error(node):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "broad except swallows the error: re-raise, log, or "
                        "account for it (ErrorBudget / health record / "
                        "metrics)"
                    ),
                )
