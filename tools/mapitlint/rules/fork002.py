"""FORK002 — supervised dispatch only.

Worker fault tolerance lives in one place:
:func:`repro.robust.supervise.supervised_pool_map` wraps every pool
dispatch with per-shard deadlines, dead/hung-worker detection, retries
with backoff, and inline degradation on the final attempt
(docs/ROBUSTNESS.md).  A direct ``map``-family call on a
``multiprocessing`` pool anywhere else bypasses all of that: one
OOM-killed worker hangs the parent forever.

Flags any ``map`` / ``imap`` / ``starmap`` / ``*_async`` /
``imap_unordered`` call on a pool-like receiver, and any direct
``Pool(...)`` construction, outside ``repro/robust/supervise.py``.
Callers shard through :func:`repro.perf.pool.fork_map`, which routes
to the supervisor.  Suppress a reviewed exception with
``# mapitlint: disable=FORK002 -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, register
from tools.mapitlint.rules._helpers import dotted_name

#: pool dispatch methods that must only appear inside the supervisor
DISPATCH_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "map_async",
    "starmap_async",
    "apply",
    "apply_async",
}

#: the one module allowed to talk to pools directly
SUPERVISOR_PATH = "repro/robust/supervise.py"


def _is_pool_receiver(node: ast.AST) -> bool:
    """True when the attribute receiver looks like a process pool."""
    name = dotted_name(node) or ""
    return "pool" in name.lower()


def _is_pool_constructor(node: ast.Call) -> bool:
    """True for ``Pool(...)`` / ``multiprocessing.Pool(...)`` / ``ctx.Pool(...)``."""
    name = dotted_name(node.func) or ""
    return name == "Pool" or name.endswith(".Pool")


@register
class SupervisedDispatchOnly(Rule):
    rule_id = "FORK002"
    name = "supervised-dispatch-only"
    description = (
        "direct multiprocessing pool construction or map-family dispatch "
        "outside repro.robust.supervise bypasses worker supervision"
    )

    def check_module(self, module, ctx) -> Iterator[Finding]:
        if module.relpath.replace("\\", "/").endswith(SUPERVISOR_PATH):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_pool_constructor(node):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "direct Pool construction outside the supervisor: "
                        "use repro.perf.pool.fork_map, which dispatches "
                        "through repro.robust.supervise"
                    ),
                )
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in DISPATCH_METHODS
                and _is_pool_receiver(func.value)
            ):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"direct pool.{func.attr} outside the supervisor "
                        "bypasses deadlines, retries, and dead-worker "
                        "detection; use repro.perf.pool.fork_map"
                    ),
                )
