"""mapitlint — AST-based invariant checker for the MAP-IT codebase.

Run as ``python -m tools.mapitlint [paths ...]`` from the repo root.
See docs/STATIC_ANALYSIS.md for the rule catalogue, the pragma and
baseline workflows, and how to write a new rule plugin.
"""

from tools.mapitlint.engine import LintContext, ModuleInfo, load_module, run_lint
from tools.mapitlint.findings import Finding
from tools.mapitlint.registry import Rule, all_rules, known_ids, register

__all__ = [
    "Finding",
    "LintContext",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "known_ids",
    "load_module",
    "register",
    "run_lint",
]
